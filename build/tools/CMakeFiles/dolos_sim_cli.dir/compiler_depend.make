# Empty compiler generated dependencies file for dolos_sim_cli.
# This may be replaced when dependencies are built.
