file(REMOVE_RECURSE
  "CMakeFiles/dolos_sim_cli.dir/dolos_sim.cc.o"
  "CMakeFiles/dolos_sim_cli.dir/dolos_sim.cc.o.d"
  "dolos-sim"
  "dolos-sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dolos_sim_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
