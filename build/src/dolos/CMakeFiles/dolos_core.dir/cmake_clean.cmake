file(REMOVE_RECURSE
  "CMakeFiles/dolos_core.dir/controller.cc.o"
  "CMakeFiles/dolos_core.dir/controller.cc.o.d"
  "CMakeFiles/dolos_core.dir/misu.cc.o"
  "CMakeFiles/dolos_core.dir/misu.cc.o.d"
  "CMakeFiles/dolos_core.dir/system.cc.o"
  "CMakeFiles/dolos_core.dir/system.cc.o.d"
  "libdolos_core.a"
  "libdolos_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dolos_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
