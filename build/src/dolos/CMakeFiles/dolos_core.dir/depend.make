# Empty dependencies file for dolos_core.
# This may be replaced when dependencies are built.
