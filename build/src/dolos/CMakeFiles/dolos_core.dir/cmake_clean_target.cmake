file(REMOVE_RECURSE
  "libdolos_core.a"
)
