
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dolos/controller.cc" "src/dolos/CMakeFiles/dolos_core.dir/controller.cc.o" "gcc" "src/dolos/CMakeFiles/dolos_core.dir/controller.cc.o.d"
  "/root/repo/src/dolos/misu.cc" "src/dolos/CMakeFiles/dolos_core.dir/misu.cc.o" "gcc" "src/dolos/CMakeFiles/dolos_core.dir/misu.cc.o.d"
  "/root/repo/src/dolos/system.cc" "src/dolos/CMakeFiles/dolos_core.dir/system.cc.o" "gcc" "src/dolos/CMakeFiles/dolos_core.dir/system.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dolos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dolos_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dolos_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/secure/CMakeFiles/dolos_secure.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dolos_cpu.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
