file(REMOVE_RECURSE
  "CMakeFiles/dolos_cpu.dir/core.cc.o"
  "CMakeFiles/dolos_cpu.dir/core.cc.o.d"
  "libdolos_cpu.a"
  "libdolos_cpu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dolos_cpu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
