# Empty dependencies file for dolos_cpu.
# This may be replaced when dependencies are built.
