file(REMOVE_RECURSE
  "libdolos_cpu.a"
)
