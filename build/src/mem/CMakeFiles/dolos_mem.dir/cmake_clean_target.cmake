file(REMOVE_RECURSE
  "libdolos_mem.a"
)
