file(REMOVE_RECURSE
  "CMakeFiles/dolos_mem.dir/cache.cc.o"
  "CMakeFiles/dolos_mem.dir/cache.cc.o.d"
  "CMakeFiles/dolos_mem.dir/hierarchy.cc.o"
  "CMakeFiles/dolos_mem.dir/hierarchy.cc.o.d"
  "CMakeFiles/dolos_mem.dir/nvm_device.cc.o"
  "CMakeFiles/dolos_mem.dir/nvm_device.cc.o.d"
  "libdolos_mem.a"
  "libdolos_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dolos_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
