# Empty dependencies file for dolos_mem.
# This may be replaced when dependencies are built.
