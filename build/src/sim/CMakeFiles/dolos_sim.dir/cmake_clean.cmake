file(REMOVE_RECURSE
  "CMakeFiles/dolos_sim.dir/logging.cc.o"
  "CMakeFiles/dolos_sim.dir/logging.cc.o.d"
  "CMakeFiles/dolos_sim.dir/stats.cc.o"
  "CMakeFiles/dolos_sim.dir/stats.cc.o.d"
  "libdolos_sim.a"
  "libdolos_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dolos_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
