# Empty compiler generated dependencies file for dolos_sim.
# This may be replaced when dependencies are built.
