file(REMOVE_RECURSE
  "libdolos_sim.a"
)
