
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/secure/anubis.cc" "src/secure/CMakeFiles/dolos_secure.dir/anubis.cc.o" "gcc" "src/secure/CMakeFiles/dolos_secure.dir/anubis.cc.o.d"
  "/root/repo/src/secure/counters.cc" "src/secure/CMakeFiles/dolos_secure.dir/counters.cc.o" "gcc" "src/secure/CMakeFiles/dolos_secure.dir/counters.cc.o.d"
  "/root/repo/src/secure/merkle_tree.cc" "src/secure/CMakeFiles/dolos_secure.dir/merkle_tree.cc.o" "gcc" "src/secure/CMakeFiles/dolos_secure.dir/merkle_tree.cc.o.d"
  "/root/repo/src/secure/security_engine.cc" "src/secure/CMakeFiles/dolos_secure.dir/security_engine.cc.o" "gcc" "src/secure/CMakeFiles/dolos_secure.dir/security_engine.cc.o.d"
  "/root/repo/src/secure/tag_cache.cc" "src/secure/CMakeFiles/dolos_secure.dir/tag_cache.cc.o" "gcc" "src/secure/CMakeFiles/dolos_secure.dir/tag_cache.cc.o.d"
  "/root/repo/src/secure/toc.cc" "src/secure/CMakeFiles/dolos_secure.dir/toc.cc.o" "gcc" "src/secure/CMakeFiles/dolos_secure.dir/toc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dolos_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dolos_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dolos_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
