file(REMOVE_RECURSE
  "libdolos_secure.a"
)
