# Empty dependencies file for dolos_secure.
# This may be replaced when dependencies are built.
