file(REMOVE_RECURSE
  "CMakeFiles/dolos_secure.dir/anubis.cc.o"
  "CMakeFiles/dolos_secure.dir/anubis.cc.o.d"
  "CMakeFiles/dolos_secure.dir/counters.cc.o"
  "CMakeFiles/dolos_secure.dir/counters.cc.o.d"
  "CMakeFiles/dolos_secure.dir/merkle_tree.cc.o"
  "CMakeFiles/dolos_secure.dir/merkle_tree.cc.o.d"
  "CMakeFiles/dolos_secure.dir/security_engine.cc.o"
  "CMakeFiles/dolos_secure.dir/security_engine.cc.o.d"
  "CMakeFiles/dolos_secure.dir/tag_cache.cc.o"
  "CMakeFiles/dolos_secure.dir/tag_cache.cc.o.d"
  "CMakeFiles/dolos_secure.dir/toc.cc.o"
  "CMakeFiles/dolos_secure.dir/toc.cc.o.d"
  "libdolos_secure.a"
  "libdolos_secure.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dolos_secure.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
