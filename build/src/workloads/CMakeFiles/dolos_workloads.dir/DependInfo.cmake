
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/btree.cc" "src/workloads/CMakeFiles/dolos_workloads.dir/btree.cc.o" "gcc" "src/workloads/CMakeFiles/dolos_workloads.dir/btree.cc.o.d"
  "/root/repo/src/workloads/ctree.cc" "src/workloads/CMakeFiles/dolos_workloads.dir/ctree.cc.o" "gcc" "src/workloads/CMakeFiles/dolos_workloads.dir/ctree.cc.o.d"
  "/root/repo/src/workloads/echo.cc" "src/workloads/CMakeFiles/dolos_workloads.dir/echo.cc.o" "gcc" "src/workloads/CMakeFiles/dolos_workloads.dir/echo.cc.o.d"
  "/root/repo/src/workloads/hashmap.cc" "src/workloads/CMakeFiles/dolos_workloads.dir/hashmap.cc.o" "gcc" "src/workloads/CMakeFiles/dolos_workloads.dir/hashmap.cc.o.d"
  "/root/repo/src/workloads/nstore_ycsb.cc" "src/workloads/CMakeFiles/dolos_workloads.dir/nstore_ycsb.cc.o" "gcc" "src/workloads/CMakeFiles/dolos_workloads.dir/nstore_ycsb.cc.o.d"
  "/root/repo/src/workloads/pmem.cc" "src/workloads/CMakeFiles/dolos_workloads.dir/pmem.cc.o" "gcc" "src/workloads/CMakeFiles/dolos_workloads.dir/pmem.cc.o.d"
  "/root/repo/src/workloads/rbtree.cc" "src/workloads/CMakeFiles/dolos_workloads.dir/rbtree.cc.o" "gcc" "src/workloads/CMakeFiles/dolos_workloads.dir/rbtree.cc.o.d"
  "/root/repo/src/workloads/redis.cc" "src/workloads/CMakeFiles/dolos_workloads.dir/redis.cc.o" "gcc" "src/workloads/CMakeFiles/dolos_workloads.dir/redis.cc.o.d"
  "/root/repo/src/workloads/runner.cc" "src/workloads/CMakeFiles/dolos_workloads.dir/runner.cc.o" "gcc" "src/workloads/CMakeFiles/dolos_workloads.dir/runner.cc.o.d"
  "/root/repo/src/workloads/tx.cc" "src/workloads/CMakeFiles/dolos_workloads.dir/tx.cc.o" "gcc" "src/workloads/CMakeFiles/dolos_workloads.dir/tx.cc.o.d"
  "/root/repo/src/workloads/vacation.cc" "src/workloads/CMakeFiles/dolos_workloads.dir/vacation.cc.o" "gcc" "src/workloads/CMakeFiles/dolos_workloads.dir/vacation.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/dolos_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/dolos_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/dolos/CMakeFiles/dolos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/secure/CMakeFiles/dolos_secure.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dolos_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dolos_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dolos_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dolos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
