# Empty dependencies file for dolos_workloads.
# This may be replaced when dependencies are built.
