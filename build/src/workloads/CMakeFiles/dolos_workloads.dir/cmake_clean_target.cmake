file(REMOVE_RECURSE
  "libdolos_workloads.a"
)
