file(REMOVE_RECURSE
  "CMakeFiles/dolos_workloads.dir/btree.cc.o"
  "CMakeFiles/dolos_workloads.dir/btree.cc.o.d"
  "CMakeFiles/dolos_workloads.dir/ctree.cc.o"
  "CMakeFiles/dolos_workloads.dir/ctree.cc.o.d"
  "CMakeFiles/dolos_workloads.dir/echo.cc.o"
  "CMakeFiles/dolos_workloads.dir/echo.cc.o.d"
  "CMakeFiles/dolos_workloads.dir/hashmap.cc.o"
  "CMakeFiles/dolos_workloads.dir/hashmap.cc.o.d"
  "CMakeFiles/dolos_workloads.dir/nstore_ycsb.cc.o"
  "CMakeFiles/dolos_workloads.dir/nstore_ycsb.cc.o.d"
  "CMakeFiles/dolos_workloads.dir/pmem.cc.o"
  "CMakeFiles/dolos_workloads.dir/pmem.cc.o.d"
  "CMakeFiles/dolos_workloads.dir/rbtree.cc.o"
  "CMakeFiles/dolos_workloads.dir/rbtree.cc.o.d"
  "CMakeFiles/dolos_workloads.dir/redis.cc.o"
  "CMakeFiles/dolos_workloads.dir/redis.cc.o.d"
  "CMakeFiles/dolos_workloads.dir/runner.cc.o"
  "CMakeFiles/dolos_workloads.dir/runner.cc.o.d"
  "CMakeFiles/dolos_workloads.dir/tx.cc.o"
  "CMakeFiles/dolos_workloads.dir/tx.cc.o.d"
  "CMakeFiles/dolos_workloads.dir/vacation.cc.o"
  "CMakeFiles/dolos_workloads.dir/vacation.cc.o.d"
  "CMakeFiles/dolos_workloads.dir/workload.cc.o"
  "CMakeFiles/dolos_workloads.dir/workload.cc.o.d"
  "libdolos_workloads.a"
  "libdolos_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dolos_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
