file(REMOVE_RECURSE
  "libdolos_crypto.a"
)
