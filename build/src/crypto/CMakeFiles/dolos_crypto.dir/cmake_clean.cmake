file(REMOVE_RECURSE
  "CMakeFiles/dolos_crypto.dir/aes128.cc.o"
  "CMakeFiles/dolos_crypto.dir/aes128.cc.o.d"
  "CMakeFiles/dolos_crypto.dir/ctr_pad.cc.o"
  "CMakeFiles/dolos_crypto.dir/ctr_pad.cc.o.d"
  "CMakeFiles/dolos_crypto.dir/hmac.cc.o"
  "CMakeFiles/dolos_crypto.dir/hmac.cc.o.d"
  "CMakeFiles/dolos_crypto.dir/mac_engine.cc.o"
  "CMakeFiles/dolos_crypto.dir/mac_engine.cc.o.d"
  "CMakeFiles/dolos_crypto.dir/sha256.cc.o"
  "CMakeFiles/dolos_crypto.dir/sha256.cc.o.d"
  "CMakeFiles/dolos_crypto.dir/siphash.cc.o"
  "CMakeFiles/dolos_crypto.dir/siphash.cc.o.d"
  "libdolos_crypto.a"
  "libdolos_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dolos_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
