
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes128.cc" "src/crypto/CMakeFiles/dolos_crypto.dir/aes128.cc.o" "gcc" "src/crypto/CMakeFiles/dolos_crypto.dir/aes128.cc.o.d"
  "/root/repo/src/crypto/ctr_pad.cc" "src/crypto/CMakeFiles/dolos_crypto.dir/ctr_pad.cc.o" "gcc" "src/crypto/CMakeFiles/dolos_crypto.dir/ctr_pad.cc.o.d"
  "/root/repo/src/crypto/hmac.cc" "src/crypto/CMakeFiles/dolos_crypto.dir/hmac.cc.o" "gcc" "src/crypto/CMakeFiles/dolos_crypto.dir/hmac.cc.o.d"
  "/root/repo/src/crypto/mac_engine.cc" "src/crypto/CMakeFiles/dolos_crypto.dir/mac_engine.cc.o" "gcc" "src/crypto/CMakeFiles/dolos_crypto.dir/mac_engine.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/crypto/CMakeFiles/dolos_crypto.dir/sha256.cc.o" "gcc" "src/crypto/CMakeFiles/dolos_crypto.dir/sha256.cc.o.d"
  "/root/repo/src/crypto/siphash.cc" "src/crypto/CMakeFiles/dolos_crypto.dir/siphash.cc.o" "gcc" "src/crypto/CMakeFiles/dolos_crypto.dir/siphash.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dolos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
