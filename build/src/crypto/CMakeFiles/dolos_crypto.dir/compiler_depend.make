# Empty compiler generated dependencies file for dolos_crypto.
# This may be replaced when dependencies are built.
