# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_crash_recovery "/root/repo/build/examples/crash_recovery")
set_tests_properties(example_crash_recovery PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_attack_detection "/root/repo/build/examples/attack_detection")
set_tests_properties(example_attack_detection PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_workload "/root/repo/build/examples/custom_workload")
set_tests_properties(example_custom_workload PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
