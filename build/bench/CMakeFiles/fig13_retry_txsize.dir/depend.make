# Empty dependencies file for fig13_retry_txsize.
# This may be replaced when dependencies are built.
