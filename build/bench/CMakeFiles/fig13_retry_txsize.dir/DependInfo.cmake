
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig13_retry_txsize.cc" "bench/CMakeFiles/fig13_retry_txsize.dir/fig13_retry_txsize.cc.o" "gcc" "bench/CMakeFiles/fig13_retry_txsize.dir/fig13_retry_txsize.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/dolos_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/dolos/CMakeFiles/dolos_core.dir/DependInfo.cmake"
  "/root/repo/build/src/secure/CMakeFiles/dolos_secure.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/dolos_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/cpu/CMakeFiles/dolos_cpu.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/dolos_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/dolos_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
