file(REMOVE_RECURSE
  "CMakeFiles/fig13_retry_txsize.dir/fig13_retry_txsize.cc.o"
  "CMakeFiles/fig13_retry_txsize.dir/fig13_retry_txsize.cc.o.d"
  "fig13_retry_txsize"
  "fig13_retry_txsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_retry_txsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
