file(REMOVE_RECURSE
  "CMakeFiles/fig06_cpi_placement.dir/fig06_cpi_placement.cc.o"
  "CMakeFiles/fig06_cpi_placement.dir/fig06_cpi_placement.cc.o.d"
  "fig06_cpi_placement"
  "fig06_cpi_placement.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_cpi_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
