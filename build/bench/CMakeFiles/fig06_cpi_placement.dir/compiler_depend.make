# Empty compiler generated dependencies file for fig06_cpi_placement.
# This may be replaced when dependencies are built.
