file(REMOVE_RECURSE
  "CMakeFiles/fig12_speedup_eager.dir/fig12_speedup_eager.cc.o"
  "CMakeFiles/fig12_speedup_eager.dir/fig12_speedup_eager.cc.o.d"
  "fig12_speedup_eager"
  "fig12_speedup_eager.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_speedup_eager.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
