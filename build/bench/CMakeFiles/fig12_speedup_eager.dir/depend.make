# Empty dependencies file for fig12_speedup_eager.
# This may be replaced when dependencies are built.
