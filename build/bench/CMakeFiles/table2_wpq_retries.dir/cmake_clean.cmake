file(REMOVE_RECURSE
  "CMakeFiles/table2_wpq_retries.dir/table2_wpq_retries.cc.o"
  "CMakeFiles/table2_wpq_retries.dir/table2_wpq_retries.cc.o.d"
  "table2_wpq_retries"
  "table2_wpq_retries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_wpq_retries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
