# Empty dependencies file for table2_wpq_retries.
# This may be replaced when dependencies are built.
