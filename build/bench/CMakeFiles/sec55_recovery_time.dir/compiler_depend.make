# Empty compiler generated dependencies file for sec55_recovery_time.
# This may be replaced when dependencies are built.
