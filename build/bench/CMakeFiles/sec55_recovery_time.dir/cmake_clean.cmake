file(REMOVE_RECURSE
  "CMakeFiles/sec55_recovery_time.dir/sec55_recovery_time.cc.o"
  "CMakeFiles/sec55_recovery_time.dir/sec55_recovery_time.cc.o.d"
  "sec55_recovery_time"
  "sec55_recovery_time.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec55_recovery_time.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
