file(REMOVE_RECURSE
  "CMakeFiles/ablation_misu.dir/ablation_misu.cc.o"
  "CMakeFiles/ablation_misu.dir/ablation_misu.cc.o.d"
  "ablation_misu"
  "ablation_misu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_misu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
