# Empty compiler generated dependencies file for ablation_misu.
# This may be replaced when dependencies are built.
