file(REMOVE_RECURSE
  "CMakeFiles/ext_eadr_comparison.dir/ext_eadr_comparison.cc.o"
  "CMakeFiles/ext_eadr_comparison.dir/ext_eadr_comparison.cc.o.d"
  "ext_eadr_comparison"
  "ext_eadr_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_eadr_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
