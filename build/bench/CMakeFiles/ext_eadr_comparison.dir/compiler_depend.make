# Empty compiler generated dependencies file for ext_eadr_comparison.
# This may be replaced when dependencies are built.
