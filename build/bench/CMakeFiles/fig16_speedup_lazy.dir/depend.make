# Empty dependencies file for fig16_speedup_lazy.
# This may be replaced when dependencies are built.
