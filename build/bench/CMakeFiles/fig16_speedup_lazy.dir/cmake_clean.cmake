file(REMOVE_RECURSE
  "CMakeFiles/fig16_speedup_lazy.dir/fig16_speedup_lazy.cc.o"
  "CMakeFiles/fig16_speedup_lazy.dir/fig16_speedup_lazy.cc.o.d"
  "fig16_speedup_lazy"
  "fig16_speedup_lazy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_speedup_lazy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
