# Empty dependencies file for ablation_recovery_scheme.
# This may be replaced when dependencies are built.
