file(REMOVE_RECURSE
  "CMakeFiles/ablation_recovery_scheme.dir/ablation_recovery_scheme.cc.o"
  "CMakeFiles/ablation_recovery_scheme.dir/ablation_recovery_scheme.cc.o.d"
  "ablation_recovery_scheme"
  "ablation_recovery_scheme.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_recovery_scheme.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
