# Empty compiler generated dependencies file for fig15_wpq_size.
# This may be replaced when dependencies are built.
