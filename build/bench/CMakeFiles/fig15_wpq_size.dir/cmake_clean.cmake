file(REMOVE_RECURSE
  "CMakeFiles/fig15_wpq_size.dir/fig15_wpq_size.cc.o"
  "CMakeFiles/fig15_wpq_size.dir/fig15_wpq_size.cc.o.d"
  "fig15_wpq_size"
  "fig15_wpq_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_wpq_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
