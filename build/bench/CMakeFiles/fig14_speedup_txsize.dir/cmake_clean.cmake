file(REMOVE_RECURSE
  "CMakeFiles/fig14_speedup_txsize.dir/fig14_speedup_txsize.cc.o"
  "CMakeFiles/fig14_speedup_txsize.dir/fig14_speedup_txsize.cc.o.d"
  "fig14_speedup_txsize"
  "fig14_speedup_txsize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_speedup_txsize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
