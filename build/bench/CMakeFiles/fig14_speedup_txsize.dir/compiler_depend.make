# Empty compiler generated dependencies file for fig14_speedup_txsize.
# This may be replaced when dependencies are built.
