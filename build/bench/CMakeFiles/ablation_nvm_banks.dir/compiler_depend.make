# Empty compiler generated dependencies file for ablation_nvm_banks.
# This may be replaced when dependencies are built.
