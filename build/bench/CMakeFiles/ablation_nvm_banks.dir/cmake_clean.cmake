file(REMOVE_RECURSE
  "CMakeFiles/ablation_nvm_banks.dir/ablation_nvm_banks.cc.o"
  "CMakeFiles/ablation_nvm_banks.dir/ablation_nvm_banks.cc.o.d"
  "ablation_nvm_banks"
  "ablation_nvm_banks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_nvm_banks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
