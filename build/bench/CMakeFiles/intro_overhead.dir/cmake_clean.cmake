file(REMOVE_RECURSE
  "CMakeFiles/intro_overhead.dir/intro_overhead.cc.o"
  "CMakeFiles/intro_overhead.dir/intro_overhead.cc.o.d"
  "intro_overhead"
  "intro_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intro_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
