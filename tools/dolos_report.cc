/**
 * @file
 * dolos_report — validate and diff the simulator's JSON artifacts.
 *
 * Two modes:
 *
 *   dolos_report --check FILE
 *       Parse FILE (a --stats-json / --trace / BENCH_*.json artifact)
 *       and exit 0 if it is well-formed JSON, 2 otherwise.
 *
 *   dolos_report BASELINE CANDIDATE [--threshold PCT]
 *       Compare every numeric leaf shared by the two documents and
 *       flag regressions: metrics whose name suggests "higher is
 *       worse" (cycles, latency, stalls, retries, misses, ...) that
 *       grew by more than the threshold, and "higher is better"
 *       metrics (speedup, hits) that shrank by more than it. Exits 1
 *       if any regression was found, 0 otherwise.
 *
 *   dolos_report --diff BASELINE CANDIDATE
 *       Print the per-stage stall-cycle delta table (wpqStall / bmt /
 *       mac / aes / ...) between two --stats-json dumps. Informational
 *       (always exits 0 on readable input); the bench gates print it
 *       so a threshold failure comes with the stage that moved.
 */

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "sim/json.hh"

namespace
{

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: dolos_report --check FILE\n"
        "       dolos_report BASELINE CANDIDATE [--threshold PCT]\n"
        "       dolos_report --diff BASELINE CANDIDATE\n"
        "  --check FILE      validate a JSON artifact (exit 0/2)\n"
        "  --threshold PCT   regression threshold in percent "
        "(default 5)\n"
        "  --diff            per-stage stall-cycle delta table "
        "between two --stats-json dumps\n");
    std::exit(code);
}

std::optional<dolos::json::Value>
load(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "dolos_report: cannot read %s\n",
                     path.c_str());
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    auto v = dolos::json::parse(buf.str(), &error);
    if (!v)
        std::fprintf(stderr, "dolos_report: %s: %s\n", path.c_str(),
                     error.c_str());
    return v;
}

bool
containsWord(const std::string &path, const char *word)
{
    // Case-insensitive substring match on the leaf path.
    std::string lower;
    lower.reserve(path.size());
    for (char c : path)
        lower += char(std::tolower(static_cast<unsigned char>(c)));
    return lower.find(word) != std::string::npos;
}

/**
 * Direction heuristic: +1 means larger values are worse (latency,
 * stalls), -1 means larger values are better (speedup, hits), 0
 * means neutral (counts we cannot judge — reported but never flagged).
 */
int
direction(const std::string &path)
{
    static const char *worse[] = {"cycle",   "latency", "stall",
                                  "retries", "cpi",     "queueing",
                                  "miss",    "dropped", "conflict"};
    static const char *better[] = {"speedup", "hit"};
    for (const char *w : worse)
        if (containsWord(path, w))
            return 1;
    for (const char *w : better)
        if (containsWord(path, w))
            return -1;
    return 0;
}

/**
 * Sum every numeric leaf whose path's final segment equals @p name
 * (e.g. "stats.breakdown.bmtCycles" for "bmtCycles"). A --stats-json
 * dump has one such leaf per stage; a BENCH artifact may carry one
 * per (mode, leg) series — the sum is the document's total spend in
 * that stage either way. Returns the number of leaves summed.
 */
std::size_t
sumLeavesNamed(
    const std::vector<std::pair<std::string, double>> &leaves,
    const std::string &name, double &total)
{
    std::size_t n = 0;
    total = 0.0;
    for (const auto &[path, v] : leaves) {
        const auto pos = path.rfind('.');
        const std::string tail =
            pos == std::string::npos ? path : path.substr(pos + 1);
        if (tail == name) {
            total += v;
            ++n;
        }
    }
    return n;
}

/**
 * --diff: the persist-path stage breakdown, baseline vs candidate.
 * Rows are the per-stage cycle accounts a --stats-json dump carries;
 * stall stages sum into a combined "stall total" row so a bench-gate
 * failure shows which stage moved.
 */
int
diffStages(const dolos::json::Value &base,
           const dolos::json::Value &cand)
{
    static const char *stages[] = {
        "wpqStallCycles", "bmtCycles",      "macCycles",
        "aesCycles",      "misuMacCycles",  "ctrFetchCycles",
        "fenceStallCycles"};
    const auto baseLeaves = dolos::json::numericLeaves(base);
    const auto candLeaves = dolos::json::numericLeaves(cand);

    std::printf("%-18s %14s %14s %14s %8s\n", "stage", "baseline",
                "candidate", "delta", "pct");
    double baseTotal = 0, candTotal = 0;
    std::size_t rows = 0;
    for (const char *stage : stages) {
        double bv = 0, cv = 0;
        if (!sumLeavesNamed(baseLeaves, stage, bv) ||
            !sumLeavesNamed(candLeaves, stage, cv))
            continue;
        ++rows;
        baseTotal += bv;
        candTotal += cv;
        const double delta = cv - bv;
        const double pct = bv != 0.0  ? delta / bv * 100.0
                           : delta > 0 ? 100.0
                           : delta < 0 ? -100.0
                                       : 0.0;
        std::printf("%-18s %14.0f %14.0f %+14.0f %+7.1f%%\n", stage,
                    bv, cv, delta, pct);
    }
    if (rows == 0) {
        std::fprintf(stderr,
                     "dolos_report: no shared stage-cycle leaves — "
                     "are these --stats-json dumps?\n");
        return 2;
    }
    const double delta = candTotal - baseTotal;
    std::printf("%-18s %14.0f %14.0f %+14.0f %+7.1f%%\n",
                "stall total", baseTotal, candTotal, delta,
                baseTotal != 0.0 ? delta / baseTotal * 100.0 : 0.0);
    double bruns = 0, cruns = 0;
    if (sumLeavesNamed(baseLeaves, "runCycles", bruns) &&
        sumLeavesNamed(candLeaves, "runCycles", cruns)) {
        const double d = cruns - bruns;
        std::printf("%-18s %14.0f %14.0f %+14.0f %+7.1f%%\n",
                    "runCycles", bruns, cruns, d,
                    bruns != 0.0 ? d / bruns * 100.0 : 0.0);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> positional;
    std::string checkFile;
    bool diff = false;
    double threshold = 5.0;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             a.c_str());
                usage(1);
            }
            return argv[++i];
        };
        if (a == "--check")
            checkFile = value();
        else if (a == "--diff")
            diff = true;
        else if (a == "--threshold") {
            char *end = nullptr;
            threshold = std::strtod(value(), &end);
            if (!end || *end != '\0') {
                std::fprintf(stderr, "bad threshold\n");
                usage(1);
            }
        } else if (a == "--help" || a == "-h")
            usage(0);
        else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage(1);
        } else
            positional.push_back(a);
    }

    if (!checkFile.empty()) {
        if (!positional.empty())
            usage(1);
        auto v = load(checkFile);
        if (!v)
            return 2;
        std::printf("%s: valid JSON (%zu numeric leaves)\n",
                    checkFile.c_str(),
                    dolos::json::numericLeaves(*v).size());
        return 0;
    }

    if (positional.size() != 2)
        usage(1);

    auto base = load(positional[0]);
    auto cand = load(positional[1]);
    if (!base || !cand)
        return 2;

    if (diff)
        return diffStages(*base, *cand);

    const auto baseLeaves = dolos::json::numericLeaves(*base);
    const auto candLeaves = dolos::json::numericLeaves(*cand);
    std::size_t compared = 0;
    std::size_t regressions = 0;

    for (const auto &[path, bv] : baseLeaves) {
        const double *cv = nullptr;
        for (const auto &[cpath, val] : candLeaves) {
            if (cpath == path) {
                cv = &val;
                break;
            }
        }
        if (!cv)
            continue;
        ++compared;
        const int dir = direction(path);
        if (dir == 0 || bv == *cv)
            continue;
        const double deltaPct =
            bv != 0.0 ? (*cv - bv) / std::abs(bv) * 100.0
                      : (*cv > 0 ? 100.0 : -100.0);
        const bool isRegression = dir > 0 ? deltaPct > threshold
                                          : deltaPct < -threshold;
        if (isRegression) {
            ++regressions;
            std::printf("REGRESSION %-50s %14.2f -> %14.2f  (%+.1f%%)\n",
                        path.c_str(), bv, *cv, deltaPct);
        } else if (std::abs(deltaPct) > threshold) {
            std::printf("improved   %-50s %14.2f -> %14.2f  (%+.1f%%)\n",
                        path.c_str(), bv, *cv, deltaPct);
        }
    }

    std::printf("%zu shared numeric leaves compared, %zu regression%s "
                "(threshold %.1f%%)\n",
                compared, regressions, regressions == 1 ? "" : "s",
                threshold);
    return regressions ? 1 : 0;
}
