/**
 * @file
 * dolos_report — validate and diff the simulator's JSON artifacts.
 *
 * Two modes:
 *
 *   dolos_report --check FILE
 *       Parse FILE (a --stats-json / --trace / BENCH_*.json artifact)
 *       and exit 0 if it is well-formed JSON, 2 otherwise.
 *
 *   dolos_report BASELINE CANDIDATE [--threshold PCT]
 *       Compare every numeric leaf shared by the two documents and
 *       flag regressions: metrics whose name suggests "higher is
 *       worse" (cycles, latency, stalls, retries, misses, ...) that
 *       grew by more than the threshold, and "higher is better"
 *       metrics (speedup, hits) that shrank by more than it. Exits 1
 *       if any regression was found, 0 otherwise.
 *
 *   dolos_report --diff BASELINE CANDIDATE
 *       Print the per-stage stall-cycle delta table (wpqStall / bmt /
 *       mac / aes / ...) between two --stats-json dumps. Exits 0 on
 *       readable input with comparable stages, 2 when a stage appears
 *       in exactly one document (a one-sided artifact is a config
 *       mismatch, not a zero); the bench gates print it so a
 *       threshold failure comes with the stage that moved.
 *
 *   dolos_report --timeline FILE [FILE2]
 *       Render a --stats-timeline JSON artifact: one ASCII sparkline
 *       per derived series plus the busiest scalar counters. With a
 *       second file, print a window-aligned delta table of the shared
 *       series instead (totals, diff, and the max-divergence window).
 */

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "sim/json.hh"

namespace
{

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: dolos_report --check FILE\n"
        "       dolos_report BASELINE CANDIDATE [--threshold PCT]\n"
        "       dolos_report --diff BASELINE CANDIDATE\n"
        "       dolos_report --timeline FILE [FILE2]\n"
        "  --check FILE      validate a JSON artifact (exit 0/2)\n"
        "  --threshold PCT   regression threshold in percent "
        "(default 5)\n"
        "  --diff            per-stage stall-cycle delta table "
        "between two --stats-json dumps\n"
        "  --timeline        sparklines for a --stats-timeline "
        "artifact; with two files, a window-aligned delta table\n");
    std::exit(code);
}

std::optional<dolos::json::Value>
load(const std::string &path)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "dolos_report: cannot read %s\n",
                     path.c_str());
        return std::nullopt;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string error;
    auto v = dolos::json::parse(buf.str(), &error);
    if (!v)
        std::fprintf(stderr, "dolos_report: %s: %s\n", path.c_str(),
                     error.c_str());
    return v;
}

bool
containsWord(const std::string &path, const char *word)
{
    // Case-insensitive substring match on the leaf path.
    std::string lower;
    lower.reserve(path.size());
    for (char c : path)
        lower += char(std::tolower(static_cast<unsigned char>(c)));
    return lower.find(word) != std::string::npos;
}

/**
 * Direction heuristic: +1 means larger values are worse (latency,
 * stalls), -1 means larger values are better (speedup, hits), 0
 * means neutral (counts we cannot judge — reported but never flagged).
 */
int
direction(const std::string &path)
{
    static const char *worse[] = {"cycle",   "latency", "stall",
                                  "retries", "cpi",     "queueing",
                                  "miss",    "dropped", "conflict"};
    static const char *better[] = {"speedup", "hit", "persec"};
    for (const char *w : worse)
        if (containsWord(path, w))
            return 1;
    for (const char *w : better)
        if (containsWord(path, w))
            return -1;
    return 0;
}

/**
 * Sum every numeric leaf whose path's final segment equals @p name
 * (e.g. "stats.breakdown.bmtCycles" for "bmtCycles"). A --stats-json
 * dump has one such leaf per stage; a BENCH artifact may carry one
 * per (mode, leg) series — the sum is the document's total spend in
 * that stage either way. Returns the number of leaves summed.
 */
std::size_t
sumLeavesNamed(
    const std::vector<std::pair<std::string, double>> &leaves,
    const std::string &name, double &total)
{
    std::size_t n = 0;
    total = 0.0;
    for (const auto &[path, v] : leaves) {
        const auto pos = path.rfind('.');
        const std::string tail =
            pos == std::string::npos ? path : path.substr(pos + 1);
        if (tail == name) {
            total += v;
            ++n;
        }
    }
    return n;
}

/**
 * --diff: the persist-path stage breakdown, baseline vs candidate.
 * Rows are the per-stage cycle accounts a --stats-json dump carries;
 * stall stages sum into a combined "stall total" row so a bench-gate
 * failure shows which stage moved.
 */
int
diffStages(const dolos::json::Value &base,
           const dolos::json::Value &cand)
{
    static const char *stages[] = {
        "wpqStallCycles", "bmtCycles",      "macCycles",
        "aesCycles",      "misuMacCycles",  "ctrFetchCycles",
        "fenceStallCycles"};
    const auto baseLeaves = dolos::json::numericLeaves(base);
    const auto candLeaves = dolos::json::numericLeaves(cand);

    std::printf("%-18s %14s %14s %14s %8s\n", "stage", "baseline",
                "candidate", "delta", "pct");
    double baseTotal = 0, candTotal = 0;
    std::size_t rows = 0;
    for (const char *stage : stages) {
        double bv = 0, cv = 0;
        const std::size_t bn = sumLeavesNamed(baseLeaves, stage, bv);
        const std::size_t cn = sumLeavesNamed(candLeaves, stage, cv);
        if (!bn && !cn)
            continue; // stage absent from both: not part of this config
        if (!bn || !cn) {
            // One-sided stage: the artifacts came from different
            // configs/builds, so a delta would silently compare a
            // real count against a fabricated zero.
            std::fprintf(stderr,
                         "dolos_report: stat '%s' present only in %s "
                         "— artifacts are not comparable\n",
                         stage, bn ? "the baseline" : "the candidate");
            return 2;
        }
        ++rows;
        baseTotal += bv;
        candTotal += cv;
        const double delta = cv - bv;
        const double pct = bv != 0.0  ? delta / bv * 100.0
                           : delta > 0 ? 100.0
                           : delta < 0 ? -100.0
                                       : 0.0;
        std::printf("%-18s %14.0f %14.0f %+14.0f %+7.1f%%\n", stage,
                    bv, cv, delta, pct);
    }
    if (rows == 0) {
        std::fprintf(stderr,
                     "dolos_report: no shared stage-cycle leaves — "
                     "are these --stats-json dumps?\n");
        return 2;
    }
    const double delta = candTotal - baseTotal;
    std::printf("%-18s %14.0f %14.0f %+14.0f %+7.1f%%\n",
                "stall total", baseTotal, candTotal, delta,
                baseTotal != 0.0 ? delta / baseTotal * 100.0 : 0.0);
    double bruns = 0, cruns = 0;
    const std::size_t brn =
        sumLeavesNamed(baseLeaves, "runCycles", bruns);
    const std::size_t crn =
        sumLeavesNamed(candLeaves, "runCycles", cruns);
    if (brn && crn) {
        const double d = cruns - bruns;
        std::printf("%-18s %14.0f %14.0f %+14.0f %+7.1f%%\n",
                    "runCycles", bruns, cruns, d,
                    bruns != 0.0 ? d / bruns * 100.0 : 0.0);
    } else if (brn || crn) {
        std::fprintf(stderr,
                     "dolos_report: stat 'runCycles' present only in "
                     "%s — artifacts are not comparable\n",
                     brn ? "the baseline" : "the candidate");
        return 2;
    }
    return 0;
}

/** One named per-window series pulled out of a timeline artifact. */
struct Series
{
    std::string name;
    std::vector<double> v;

    double
    total() const
    {
        double t = 0;
        for (double x : v)
            t += x;
        return t;
    }
};

/** Parsed --stats-timeline artifact: window spans plus the series. */
struct Timeline
{
    double interval = 0;
    std::vector<std::pair<double, double>> spans; ///< [start, end)
    std::vector<Series> derived;                  ///< rates etc.
    std::vector<Series> scalars;                  ///< counter deltas
};

void
readSeriesObject(const dolos::json::Value &obj,
                 std::vector<Series> &out)
{
    for (const auto &[name, val] : obj.members()) {
        if (!val.isArray())
            continue;
        Series s;
        s.name = name;
        for (const auto &e : val.array())
            if (e.isNumber())
                s.v.push_back(e.number());
        out.push_back(std::move(s));
    }
}

std::optional<Timeline>
loadTimeline(const dolos::json::Value &root, const std::string &path)
{
    const auto *tl = root.find("timeline");
    if (!tl || !tl->isObject()) {
        std::fprintf(stderr,
                     "dolos_report: %s has no \"timeline\" object — "
                     "is this a --stats-timeline artifact?\n",
                     path.c_str());
        return std::nullopt;
    }
    Timeline out;
    if (const auto *iv = tl->find("interval"); iv && iv->isNumber())
        out.interval = iv->number();
    if (const auto *w = tl->find("windows"); w && w->isArray()) {
        for (const auto &win : w->array()) {
            const auto *s = win.find("start");
            const auto *e = win.find("end");
            out.spans.emplace_back(s && s->isNumber() ? s->number() : 0,
                                   e && e->isNumber() ? e->number() : 0);
        }
    }
    if (const auto *d = tl->find("derived"); d && d->isObject())
        readSeriesObject(*d, out.derived);
    if (const auto *s = tl->find("scalars"); s && s->isObject())
        readSeriesObject(*s, out.scalars);
    return out;
}

/**
 * Render a series as one character per window, amplitude-binned into
 * ten levels against the series' own maximum (an all-zero series is a
 * flat line of spaces).
 */
std::string
sparkline(const std::vector<double> &v)
{
    static const char levels[] = " .:-=+*#%@";
    constexpr int top = int(sizeof(levels)) - 2; // drop the NUL
    double max = 0;
    for (double x : v)
        max = std::max(max, x);
    std::string out;
    out.reserve(v.size());
    for (double x : v) {
        int lvl = 0;
        if (max > 0 && x > 0)
            lvl = std::max(1, int(x / max * top + 0.5));
        out += levels[std::min(lvl, top)];
    }
    return out;
}

/** Single-file --timeline: sparkline per derived series, then the
 *  busiest counters (largest summed per-window delta). */
int
showTimeline(const Timeline &tl)
{
    std::printf("timeline: %zu windows x %.0f cycles\n",
                tl.spans.size(), tl.interval);
    if (tl.spans.empty()) {
        std::fprintf(stderr, "dolos_report: timeline has no windows\n");
        return 2;
    }
    auto row = [&](const Series &s) {
        double max = 0;
        std::size_t argmax = 0;
        for (std::size_t i = 0; i < s.v.size(); ++i)
            if (s.v[i] > max) {
                max = s.v[i];
                argmax = i;
            }
        std::printf("  %-28s |%s|  total %.6g, peak %.6g @ w%zu\n",
                    s.name.c_str(), sparkline(s.v).c_str(), s.total(),
                    max, argmax);
    };
    for (const auto &s : tl.derived)
        row(s);
    std::vector<const Series *> busiest;
    for (const auto &s : tl.scalars)
        busiest.push_back(&s);
    std::stable_sort(busiest.begin(), busiest.end(),
                     [](const Series *a, const Series *b) {
                         return a->total() > b->total();
                     });
    if (busiest.size() > 8)
        busiest.resize(8);
    if (!busiest.empty())
        std::printf("  busiest counters:\n");
    for (const Series *s : busiest)
        row(*s);
    return 0;
}

/**
 * Two-file --timeline: window-aligned delta table over the series
 * both artifacts carry, largest absolute total change first, with the
 * window where the runs diverge the most.
 */
int
compareTimelines(const Timeline &base, const Timeline &cand)
{
    if (base.interval != cand.interval)
        std::fprintf(stderr,
                     "dolos_report: warning: sample intervals differ "
                     "(%.0f vs %.0f) — windows are not aligned\n",
                     base.interval, cand.interval);
    struct Row
    {
        std::string name;
        double bt = 0, ct = 0;
        double worst = 0; ///< largest per-window |delta|
        std::size_t worstWin = 0;
    };
    std::vector<Row> rows;
    auto collect = [&](const std::vector<Series> &bs,
                       const std::vector<Series> &cs) {
        for (const auto &b : bs) {
            const Series *c = nullptr;
            for (const auto &s : cs)
                if (s.name == b.name) {
                    c = &s;
                    break;
                }
            if (!c)
                continue;
            Row r;
            r.name = b.name;
            r.bt = b.total();
            r.ct = c->total();
            const std::size_t n = std::min(b.v.size(), c->v.size());
            for (std::size_t i = 0; i < n; ++i) {
                const double d = std::abs(c->v[i] - b.v[i]);
                if (d > r.worst) {
                    r.worst = d;
                    r.worstWin = i;
                }
            }
            rows.push_back(std::move(r));
        }
    };
    collect(base.derived, cand.derived);
    collect(base.scalars, cand.scalars);
    if (rows.empty()) {
        std::fprintf(stderr,
                     "dolos_report: the two timelines share no "
                     "series\n");
        return 2;
    }
    std::stable_sort(rows.begin(), rows.end(),
                     [](const Row &a, const Row &b) {
                         return std::abs(a.ct - a.bt) >
                                std::abs(b.ct - b.bt);
                     });
    if (rows.size() > 12)
        rows.resize(12);
    std::printf("%-28s %14s %14s %14s %8s %12s\n", "series",
                "baseline", "candidate", "delta", "pct", "worst win");
    for (const auto &r : rows) {
        const double d = r.ct - r.bt;
        const double pct = r.bt != 0.0 ? d / std::abs(r.bt) * 100.0
                           : d > 0     ? 100.0
                           : d < 0     ? -100.0
                                       : 0.0;
        char win[32];
        std::snprintf(win, sizeof(win), "w%zu (%.4g)", r.worstWin,
                      r.worst);
        std::printf("%-28s %14.6g %14.6g %+14.6g %+7.1f%% %12s\n",
                    r.name.c_str(), r.bt, r.ct, d, pct, win);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> positional;
    std::string checkFile;
    bool diff = false;
    bool timeline = false;
    double threshold = 5.0;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             a.c_str());
                usage(1);
            }
            return argv[++i];
        };
        if (a == "--check")
            checkFile = value();
        else if (a == "--diff")
            diff = true;
        else if (a == "--timeline")
            timeline = true;
        else if (a == "--threshold") {
            char *end = nullptr;
            threshold = std::strtod(value(), &end);
            if (!end || *end != '\0') {
                std::fprintf(stderr, "bad threshold\n");
                usage(1);
            }
        } else if (a == "--help" || a == "-h")
            usage(0);
        else if (!a.empty() && a[0] == '-') {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage(1);
        } else
            positional.push_back(a);
    }

    if (!checkFile.empty()) {
        if (!positional.empty())
            usage(1);
        auto v = load(checkFile);
        if (!v)
            return 2;
        std::printf("%s: valid JSON (%zu numeric leaves)\n",
                    checkFile.c_str(),
                    dolos::json::numericLeaves(*v).size());
        return 0;
    }

    if (timeline) {
        if (diff || positional.empty() || positional.size() > 2)
            usage(1);
        auto baseDoc = load(positional[0]);
        if (!baseDoc)
            return 2;
        auto baseTl = loadTimeline(*baseDoc, positional[0]);
        if (!baseTl)
            return 2;
        if (positional.size() == 1)
            return showTimeline(*baseTl);
        auto candDoc = load(positional[1]);
        if (!candDoc)
            return 2;
        auto candTl = loadTimeline(*candDoc, positional[1]);
        if (!candTl)
            return 2;
        return compareTimelines(*baseTl, *candTl);
    }

    if (positional.size() != 2)
        usage(1);

    auto base = load(positional[0]);
    auto cand = load(positional[1]);
    if (!base || !cand)
        return 2;

    if (diff)
        return diffStages(*base, *cand);

    const auto baseLeaves = dolos::json::numericLeaves(*base);
    const auto candLeaves = dolos::json::numericLeaves(*cand);
    std::size_t compared = 0;
    std::size_t regressions = 0;

    for (const auto &[path, bv] : baseLeaves) {
        const double *cv = nullptr;
        for (const auto &[cpath, val] : candLeaves) {
            if (cpath == path) {
                cv = &val;
                break;
            }
        }
        if (!cv)
            continue;
        ++compared;
        const int dir = direction(path);
        if (dir == 0 || bv == *cv)
            continue;
        const double deltaPct =
            bv != 0.0 ? (*cv - bv) / std::abs(bv) * 100.0
                      : (*cv > 0 ? 100.0 : -100.0);
        const bool isRegression = dir > 0 ? deltaPct > threshold
                                          : deltaPct < -threshold;
        if (isRegression) {
            ++regressions;
            std::printf("REGRESSION %-50s %14.2f -> %14.2f  (%+.1f%%)\n",
                        path.c_str(), bv, *cv, deltaPct);
        } else if (std::abs(deltaPct) > threshold) {
            std::printf("improved   %-50s %14.2f -> %14.2f  (%+.1f%%)\n",
                        path.c_str(), bv, *cv, deltaPct);
        }
    }

    std::printf("%zu shared numeric leaves compared, %zu regression%s "
                "(threshold %.1f%%)\n",
                compared, regressions, regressions == 1 ? "" : "s",
                threshold);
    return regressions ? 1 : 0;
}
