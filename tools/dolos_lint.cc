/**
 * @file
 * dolos_lint — static checker for the persist-domain crash-state
 * model and repository-wide logging/statistics hygiene.
 *
 * Self-contained (no compiler front end): a small C++ tokenizer plus
 * purpose-built scanners. Checks:
 *
 *  state-class   Every data member of a class carrying a
 *                DOLOS_STATE_CLASS marker is tagged exactly once with
 *                DOLOS_PERSISTENT / DOLOS_VOLATILE /
 *                DOLOS_EADR_FLUSHED, tags name real members, and the
 *                crash-relevant core classes all carry the marker.
 *  manifest      Each state class has a stateManifest() definition
 *                whose registered fields (DOLOS_MF_* or raw add())
 *                match the header tags name-for-name with consistent
 *                persistence kinds, with no duplicates.
 *  stat-name     No two statistics registered on the same group in
 *                the same file share a name (the runtime panics on
 *                collisions only when that constructor actually runs).
 *  trace-arity   DOLOS_TRACE sites pass exactly 5 arguments.
 *  prof-scope    DOLOS_PROF_SCOPE sites name a real prof::Comp
 *                component (typos would otherwise only break
 *                DOLOS_SELFPROF=ON builds).
 *  format        printf-family and logging calls with literal format
 *                strings have matching conversion/argument counts.
 *  raw-alloc     No raw new/malloc/calloc/realloc outside approved
 *                files (arena types own allocation; everything else
 *                uses std:: containers and smart pointers).
 *  thread-shared Every mutable namespace-scope or function-local
 *                static variable is thread_local or carries a
 *                DOLOS_THREAD_SHARED(lock) / DOLOS_THREAD_LOCAL_OK
 *                annotation (sim/thread_annotations.hh) — the audit
 *                the parallel sweep lanes (--jobs N) rest on.
 *  crash-cover   The enum class Step taxonomy (sim/crash_points.hh)
 *                and the DOLOS_CRASH_POINT hook sites cover each
 *                other: every registered step has >= 1 hook, every
 *                hook names a registered step, and persistent-state
 *                mutations inside drain/flush functions sit within
 *                one statement of a hook (keeps the microstep sweep
 *                exhaustive as new levers land).
 *  determinism   No rand()/srand()/time()/std random engines (the
 *                seeded sim/random.hh streams are the only sanctioned
 *                RNG) and no range-for over unordered containers
 *                (iteration order must never feed sim state).
 *
 * Suppress one finding with a trailing comment on the same line:
 *   // dolos-lint: allow(raw-alloc)
 *
 * Usage: dolos_lint [--list-checks] [--only A,B] [--skip A,B] PATH...
 * (files, or directories searched recursively for .hh/.cc/.cpp).
 * Exit 0 clean, 1 violations found, 2 usage/IO error. Diagnostics
 * are file:line: [check] message. The check registry printed by
 * --list-checks must match docs/static_analysis.md's table — the
 * lint_checks_doc ctest enforces it.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "sim/thread_annotations.hh"

namespace
{

namespace fs = std::filesystem;

// --- check registry -------------------------------------------------
//
// One row per check family. --list-checks prints this table; the
// lint_checks_doc ctest asserts it matches docs/static_analysis.md's
// check table, so a new check cannot land undocumented.

struct CheckDef
{
    const char *name;
    const char *summary;
};

constexpr CheckDef g_checkTable[] = {
    {"state-class",
     "every DOLOS_STATE_CLASS member is tagged exactly once and the "
     "crash-relevant classes carry the marker"},
    {"manifest",
     "stateManifest() registrations match the header tags "
     "name-for-name with consistent persistence kinds"},
    {"stat-name",
     "no two statistics on one group in one file share a name"},
    {"trace-arity", "DOLOS_TRACE sites pass exactly 5 arguments"},
    {"prof-scope",
     "DOLOS_PROF_SCOPE names a real prof::Comp component"},
    {"format",
     "printf-family literal format strings consume exactly the "
     "supplied arguments"},
    {"raw-alloc",
     "no raw new/malloc/calloc/realloc outside approved files"},
    {"thread-shared",
     "mutable namespace-scope / static-local state is thread_local "
     "or carries DOLOS_THREAD_SHARED / DOLOS_THREAD_LOCAL_OK"},
    {"crash-cover",
     "every Step has a DOLOS_CRASH_POINT hook, every hook names a "
     "registered step, drain/flush persist mutations sit within one "
     "statement of a hook"},
    {"determinism",
     "no rand()/time()/std random engines and no range-for over "
     "unordered containers (sim/random.hh streams only)"},
};

bool
isKnownCheck(const std::string &name)
{
    for (const auto &c : g_checkTable)
        if (name == c.name)
            return true;
    return false;
}

/** Checks selected by --only/--skip; empty = all enabled. */
DOLOS_THREAD_LOCAL_OK; // single-threaded tool
std::set<std::string> g_enabledChecks;

bool
checkEnabled(const std::string &name)
{
    return g_enabledChecks.empty() || g_enabledChecks.count(name) != 0;
}

// --- diagnostics ----------------------------------------------------

struct Violation
{
    std::string file;
    int line = 0;
    std::string check;
    std::string msg;

    bool
    operator<(const Violation &o) const
    {
        if (file != o.file)
            return file < o.file;
        if (line != o.line)
            return line < o.line;
        return msg < o.msg;
    }
};

DOLOS_THREAD_LOCAL_OK; // single-threaded tool
std::vector<Violation> g_violations;

/** Per-file, per-line suppressions from `dolos-lint: allow(...)`. */
DOLOS_THREAD_LOCAL_OK; // single-threaded tool
std::map<std::string, std::map<int, std::set<std::string>>> g_allows;

void
report(const std::string &file, int line, const std::string &check,
       const std::string &msg)
{
    if (!checkEnabled(check))
        return;
    const auto fit = g_allows.find(file);
    if (fit != g_allows.end()) {
        const auto lit = fit->second.find(line);
        if (lit != fit->second.end() &&
            (lit->second.count(check) || lit->second.count("all")))
            return;
    }
    g_violations.push_back({file, line, check, msg});
}

// --- tokenizer ------------------------------------------------------

struct Token
{
    enum Type { Ident, Number, Str, CharLit, Punct };
    Type type = Punct;
    std::string text;
    int line = 0;
};

bool
isIdentStart(char c)
{
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool
isIdentChar(char c)
{
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

/** Record `dolos-lint: allow(a,b)` suppressions found in a comment. */
void
scanComment(const std::string &file, int line, const std::string &text)
{
    const auto pos = text.find("dolos-lint:");
    if (pos == std::string::npos)
        return;
    const auto open = text.find('(', pos);
    const auto close = text.find(')', pos);
    if (open == std::string::npos || close == std::string::npos ||
        close < open)
        return;
    std::string list = text.substr(open + 1, close - open - 1);
    std::istringstream is(list);
    std::string item;
    while (std::getline(is, item, ',')) {
        item.erase(std::remove_if(item.begin(), item.end(),
                                  [](unsigned char c) {
                                      return std::isspace(c);
                                  }),
                   item.end());
        if (!item.empty())
            g_allows[file][line].insert(item);
    }
}

/**
 * Tokenize one translation unit. Comments are consumed (mining them
 * for suppressions); preprocessor directives are skipped whole,
 * including backslash continuations, so macro *definitions* are
 * never mistaken for uses.
 */
std::vector<Token>
tokenize(const std::string &file, const std::string &src)
{
    std::vector<Token> out;
    const std::size_t n = src.size();
    std::size_t i = 0;
    int line = 1;
    bool atLineStart = true;

    auto advance = [&](std::size_t to) {
        for (; i < to && i < n; ++i)
            if (src[i] == '\n') {
                ++line;
                atLineStart = true;
            }
    };

    while (i < n) {
        const char c = src[i];
        if (c == '\n') {
            ++line;
            atLineStart = true;
            ++i;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c))) {
            ++i;
            continue;
        }
        // Preprocessor directive: skip to an uncontinued newline.
        if (c == '#' && atLineStart) {
            while (i < n) {
                if (src[i] == '\\' && i + 1 < n && src[i + 1] == '\n') {
                    advance(i + 2);
                    continue;
                }
                if (src[i] == '\n')
                    break;
                ++i;
            }
            continue;
        }
        atLineStart = false;
        // Comments.
        if (c == '/' && i + 1 < n && src[i + 1] == '/') {
            const auto end = src.find('\n', i);
            const auto stop = end == std::string::npos ? n : end;
            scanComment(file, line, src.substr(i, stop - i));
            i = stop;
            continue;
        }
        if (c == '/' && i + 1 < n && src[i + 1] == '*') {
            const auto end = src.find("*/", i + 2);
            const auto stop = end == std::string::npos ? n : end + 2;
            scanComment(file, line, src.substr(i, stop - i));
            advance(stop);
            continue;
        }
        // Identifiers (and literal prefixes).
        if (isIdentStart(c)) {
            std::size_t j = i;
            while (j < n && isIdentChar(src[j]))
                ++j;
            std::string word = src.substr(i, j - i);
            // String/char literal prefix glued to a quote: u8"..",
            // L'x', R"(..)" and friends.
            if (j < n && (src[j] == '"' || src[j] == '\'') &&
                (word == "u8" || word == "u" || word == "U" ||
                 word == "L" || word == "R" || word == "u8R" ||
                 word == "uR" || word == "UR" || word == "LR")) {
                i = j; // fall through to the literal scanners below
                if (word.back() == 'R' && src[j] == '"') {
                    // Raw string: R"delim( ... )delim"
                    std::size_t k = j + 1;
                    std::string delim;
                    while (k < n && src[k] != '(')
                        delim += src[k++];
                    const std::string close = ")" + delim + "\"";
                    const auto end = src.find(close, k);
                    const auto stop =
                        end == std::string::npos ? n : end + close.size();
                    const int at = line;
                    std::string text = src.substr(j, stop - j);
                    advance(stop);
                    out.push_back({Token::Str, std::move(text), at});
                    continue;
                }
                // Cooked literal with prefix: let the quote scanner
                // below emit it (prefix itself carries no meaning for
                // any check).
                continue;
            }
            out.push_back({Token::Ident, std::move(word), line});
            i = j;
            continue;
        }
        // Numbers (enough to step over hex/float/suffixes).
        if (std::isdigit(static_cast<unsigned char>(c)) ||
            (c == '.' && i + 1 < n &&
             std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
            std::size_t j = i;
            while (j < n && (isIdentChar(src[j]) || src[j] == '.' ||
                             ((src[j] == '+' || src[j] == '-') && j > i &&
                              (src[j - 1] == 'e' || src[j - 1] == 'E' ||
                               src[j - 1] == 'p' || src[j - 1] == 'P'))))
                ++j;
            out.push_back({Token::Number, src.substr(i, j - i), line});
            i = j;
            continue;
        }
        // String / char literals.
        if (c == '"' || c == '\'') {
            std::size_t j = i + 1;
            while (j < n && src[j] != c) {
                if (src[j] == '\\' && j + 1 < n)
                    ++j;
                ++j;
            }
            const std::size_t stop = j < n ? j + 1 : n;
            const int at = line;
            std::string text = src.substr(i, stop - i);
            advance(stop);
            out.push_back({c == '"' ? Token::Str : Token::CharLit,
                           std::move(text), at});
            continue;
        }
        // Punctuation: longest match first (only the operators any
        // check inspects need to stay glued).
        static const char *multi[] = {"::", "->", "...", "<<=", ">>=",
                                      "<<", ">>", "<=", ">=", "==",
                                      "!=", "&&", "||", "+=", "-=",
                                      "*=", "/=", "++", "--"};
        std::string tok(1, c);
        for (const char *m : multi) {
            const std::size_t len = std::strlen(m);
            if (src.compare(i, len, m) == 0 && len > tok.size())
                tok = m;
        }
        out.push_back({Token::Punct, tok, line});
        i += tok.size();
    }
    return out;
}

// --- token-stream helpers -------------------------------------------

bool
isPunct(const Token &t, const char *s)
{
    return t.type == Token::Punct && t.text == s;
}

bool
isIdent(const Token &t, const char *s)
{
    return t.type == Token::Ident && t.text == s;
}

/** Index of the bracket matching toks[open] ('(' '[' '{'). */
std::size_t
matchBracket(const std::vector<Token> &toks, std::size_t open)
{
    int depth = 0;
    for (std::size_t i = open; i < toks.size(); ++i) {
        if (toks[i].type != Token::Punct)
            continue;
        const std::string &t = toks[i].text;
        if (t == "(" || t == "[" || t == "{")
            ++depth;
        else if (t == ")" || t == "]" || t == "}") {
            --depth;
            if (depth == 0)
                return i;
        }
    }
    return toks.size();
}

/** Split the argument list of the call whose '(' is at @p open. */
std::vector<std::pair<std::size_t, std::size_t>>
splitArgs(const std::vector<Token> &toks, std::size_t open,
          std::size_t close)
{
    std::vector<std::pair<std::size_t, std::size_t>> args;
    if (close <= open + 1)
        return args;
    int depth = 0;
    std::size_t start = open + 1;
    for (std::size_t i = open + 1; i < close; ++i) {
        if (toks[i].type == Token::Punct) {
            const std::string &t = toks[i].text;
            if (t == "(" || t == "[" || t == "{")
                ++depth;
            else if (t == ")" || t == "]" || t == "}")
                --depth;
            else if (t == "," && depth == 0) {
                args.emplace_back(start, i);
                start = i + 1;
            }
        }
    }
    args.emplace_back(start, close);
    return args;
}

std::string
joinTokens(const std::vector<Token> &toks, std::size_t b, std::size_t e)
{
    std::string s;
    for (std::size_t i = b; i < e && i < toks.size(); ++i)
        s += toks[i].text;
    return s;
}

// --- check: state-class tagging + manifest cross-check --------------

struct ClassInfo
{
    std::string file;
    int line = 0; ///< of the class-name token
    bool stateClass = false;
    int markerLine = 0;
    std::map<std::string, char> tags;    ///< member -> 'P' / 'V'
    std::map<std::string, int> tagLines; ///< member -> tag line
    std::map<std::string, int> members;  ///< declared member -> line
};

struct ManifestInfo
{
    std::string file;
    int line = 0;
    std::map<std::string, char> fields; ///< name -> 'P' / 'V'
};

DOLOS_THREAD_LOCAL_OK; // single-threaded tool
std::map<std::string, ClassInfo> g_classes;
DOLOS_THREAD_LOCAL_OK; // single-threaded tool
std::map<std::string, std::vector<ManifestInfo>> g_manifests;

/**
 * The crash-relevant core classes: each must carry the
 * DOLOS_STATE_CLASS marker wherever its definition is found.
 */
const std::set<std::string> g_requiredStateClasses = {
    "MiSu",          "SecureMemController", "RedoLogBuffer",
    "SecurityEngine", "CounterStore",       "MerkleTree",
    "TagCache",      "AnubisShadow",        "NvmDevice",
    "BackingStore",  "SimpleCore",          "Cache",
    "CacheHierarchy", "System",
};

bool
containsIdent(const std::vector<Token> &stmt, const char *word)
{
    for (const auto &t : stmt)
        if (isIdent(t, word))
            return true;
    return false;
}

bool
containsPunct(const std::vector<Token> &stmt, const char *p)
{
    for (const auto &t : stmt)
        if (isPunct(t, p))
            return true;
    return false;
}

void
processMemberStatement(const std::string &file, ClassInfo &info,
                       const std::vector<Token> &stmt)
{
    if (stmt.empty())
        return;
    const Token &head = stmt.front();

    if (isIdent(head, "DOLOS_STATE_CLASS")) {
        info.stateClass = true;
        info.markerLine = head.line;
        return;
    }
    if (isIdent(head, "DOLOS_PERSISTENT") ||
        isIdent(head, "DOLOS_VOLATILE") ||
        isIdent(head, "DOLOS_EADR_FLUSHED")) {
        const char kind = head.text == "DOLOS_PERSISTENT" ? 'P'
                          : head.text == "DOLOS_VOLATILE" ? 'V'
                                                          : 'E';
        if (stmt.size() < 4 || !isPunct(stmt[1], "(")) {
            report(file, head.line, "state-class",
                   head.text + ": malformed tag");
            return;
        }
        // Field name: everything between the parens.
        std::size_t close = 2;
        while (close < stmt.size() && !isPunct(stmt[close], ")"))
            ++close;
        std::string name;
        for (std::size_t i = 2; i < close; ++i)
            name += stmt[i].text;
        if (name.empty()) {
            report(file, head.line, "state-class",
                   head.text + ": empty field name");
            return;
        }
        if (info.tags.count(name)) {
            report(file, head.line, "state-class",
                   "field '" + name + "' annotated twice (previous at "
                   "line " + std::to_string(info.tagLines[name]) + ")");
            return;
        }
        info.tags[name] = kind;
        info.tagLines[name] = head.line;
        return;
    }

    // Not a data member: type aliases, nested types, functions,
    // compile-time and per-class (non-instance) state.
    for (const char *kw : {"static", "constexpr", "friend", "using",
                           "typedef", "template", "operator", "enum",
                           "class", "struct", "union", "virtual",
                           "explicit"})
        if (containsIdent(stmt, kw))
            return;
    if (containsPunct(stmt, "(") || containsPunct(stmt, "~"))
        return; // function / constructor / destructor declaration

    // Member name: last identifier before the initializer (= or {})
    // or the end of the declaration.
    std::size_t end = stmt.size();
    for (std::size_t i = 0; i < stmt.size(); ++i)
        if (isPunct(stmt[i], "=") || isPunct(stmt[i], "{}") ||
            isPunct(stmt[i], "[")) {
            end = i;
            break;
        }
    for (std::size_t i = end; i-- > 0;) {
        if (stmt[i].type == Token::Ident) {
            info.members.emplace(stmt[i].text, stmt[i].line);
            return;
        }
    }
}

std::size_t parseClassBody(const std::string &file,
                           const std::vector<Token> &toks,
                           std::size_t openBrace,
                           const std::string &className, int nameLine);

/**
 * If toks[i] starts a class/struct *definition*, parse it (and any
 * nested definitions) and return the index one past its closing
 * brace; otherwise return i.
 */
std::size_t
maybeParseClass(const std::string &file, const std::vector<Token> &toks,
                std::size_t i)
{
    if (!(isIdent(toks[i], "class") || isIdent(toks[i], "struct")))
        return i;
    // Exclude `enum class` and `friend class X;`.
    if (i > 0 && (isIdent(toks[i - 1], "enum") ||
                  isIdent(toks[i - 1], "friend")))
        return i;
    if (i + 1 >= toks.size() || toks[i + 1].type != Token::Ident)
        return i;
    const std::string name = toks[i + 1].text;
    const int nameLine = toks[i + 1].line;
    // Scan to '{' (definition) or ';'/'('/')' (declaration or use).
    std::size_t j = i + 2;
    while (j < toks.size()) {
        if (isPunct(toks[j], "{"))
            return parseClassBody(file, toks, j, name, nameLine) + 1;
        if (isPunct(toks[j], ";") || isPunct(toks[j], "(") ||
            isPunct(toks[j], ")") || isPunct(toks[j], ">"))
            return i;
        ++j;
    }
    return i;
}

/** Parse one class body; returns the index of its closing '}'. */
std::size_t
parseClassBody(const std::string &file, const std::vector<Token> &toks,
               std::size_t openBrace, const std::string &className,
               int nameLine)
{
    const std::size_t close = matchBracket(toks, openBrace);
    ClassInfo info;
    info.file = file;
    info.line = nameLine;

    std::vector<Token> stmt;
    std::size_t i = openBrace + 1;
    while (i < close) {
        const Token &t = toks[i];
        if (isPunct(t, "{")) {
            // Nested definition, inline method body, or brace init.
            if (!stmt.empty() && (isIdent(stmt.front(), "class") ||
                                  isIdent(stmt.front(), "struct") ||
                                  isIdent(stmt.front(), "union"))) {
                // Recurse so nested state classes are seen too.
                std::size_t k = 0;
                while (k < stmt.size() &&
                       !(isIdent(stmt[k], "class") ||
                         isIdent(stmt[k], "struct") ||
                         isIdent(stmt[k], "union")))
                    ++k;
                std::string nested = "?";
                int nline = t.line;
                if (k + 1 < stmt.size() &&
                    stmt[k + 1].type == Token::Ident) {
                    nested = stmt[k + 1].text;
                    nline = stmt[k + 1].line;
                }
                i = parseClassBody(file, toks, i, nested, nline) + 1;
                // keep accumulating: `struct X {...} member;` declares
                // a member named after the brace block.
                stmt.push_back({Token::Punct, "{}", t.line});
                continue;
            }
            const std::size_t blockEnd = matchBracket(toks, i);
            if (containsPunct(stmt, "(") ||
                containsIdent(stmt, "enum")) {
                // Function definition body (no trailing ';' required)
                // or enum body: consume and reset.
                const bool fn = containsPunct(stmt, "(");
                i = blockEnd + 1;
                if (fn) {
                    stmt.clear();
                } else {
                    stmt.push_back({Token::Punct, "{}", t.line});
                }
                continue;
            }
            // Brace initializer on a data member.
            stmt.push_back({Token::Punct, "{}", t.line});
            i = blockEnd + 1;
            continue;
        }
        if (isPunct(t, ";")) {
            processMemberStatement(file, info, stmt);
            stmt.clear();
            ++i;
            continue;
        }
        if (isPunct(t, ":") && stmt.size() == 1 &&
            (isIdent(stmt[0], "public") || isIdent(stmt[0], "private") ||
             isIdent(stmt[0], "protected"))) {
            stmt.clear();
            ++i;
            continue;
        }
        stmt.push_back(t);
        ++i;
    }
    processMemberStatement(file, info, stmt);

    if (info.stateClass || info.members.size() || info.tags.size()) {
        auto [it, fresh] = g_classes.emplace(className, info);
        if (!fresh) {
            // Same class seen twice (e.g. re-scan or redefinition):
            // prefer the instance that carries the marker.
            if (info.stateClass && !it->second.stateClass)
                it->second = info;
        }
    }
    return close;
}

/** Map a manifest-builder macro to the tag kind it must match. */
char
manifestMacroKind(const std::string &name)
{
    if (name == "DOLOS_MF_P" || name == "DOLOS_MF_P_CHECK" ||
        name == "DOLOS_MF_CONST" || name == "DOLOS_MF_DELEGATED_P")
        return 'P';
    if (name == "DOLOS_MF_V" || name == "DOLOS_MF_V_CHECK" ||
        name == "DOLOS_MF_DELEGATED_V")
        return 'V';
    if (name == "DOLOS_MF_EADR_FLUSHED")
        return 'E';
    return 0;
}

/** Human word for a tag kind letter ('P'/'V'/'E'). */
const char *
kindWord(char kind)
{
    return kind == 'P' ? "persistent"
           : kind == 'V' ? "volatile"
                         : "eadr-flushed";
}

/** Strip quotes from a cooked string-literal token. */
std::string
literalContent(const std::string &text)
{
    const auto first = text.find('"');
    const auto last = text.rfind('"');
    if (first == std::string::npos || last <= first)
        return "";
    return text.substr(first + 1, last - first - 1);
}

/** Parse X::stateManifest() definitions and their registrations. */
void
scanManifests(const std::string &file, const std::vector<Token> &toks)
{
    for (std::size_t i = 0; i + 3 < toks.size(); ++i) {
        if (!(toks[i].type == Token::Ident && isPunct(toks[i + 1], "::") &&
              isIdent(toks[i + 2], "stateManifest") &&
              isPunct(toks[i + 3], "(")))
            continue;
        const std::string cls = toks[i].text;
        const std::size_t paramsClose = matchBracket(toks, i + 3);
        // Definition only: a '{' before the next ';'.
        std::size_t j = paramsClose + 1;
        while (j < toks.size() && !isPunct(toks[j], "{") &&
               !isPunct(toks[j], ";"))
            ++j;
        if (j >= toks.size() || !isPunct(toks[j], "{"))
            continue;
        const std::size_t bodyEnd = matchBracket(toks, j);

        ManifestInfo mi;
        mi.file = file;
        mi.line = toks[i].line;
        std::map<std::string, int> lines;

        auto addField = [&](const std::string &name, char kind,
                            int line) {
            if (mi.fields.count(name)) {
                report(file, line, "manifest",
                       cls + "::stateManifest registers '" + name +
                           "' twice (previous at line " +
                           std::to_string(lines[name]) + ")");
                return;
            }
            mi.fields[name] = kind;
            lines[name] = line;
        };

        for (std::size_t k = j + 1; k < bodyEnd; ++k) {
            const Token &t = toks[k];
            if (t.type != Token::Ident)
                continue;
            const char mk = manifestMacroKind(t.text);
            if (mk && k + 1 < bodyEnd && isPunct(toks[k + 1], "(")) {
                const std::size_t cp = matchBracket(toks, k + 1);
                const auto args = splitArgs(toks, k + 1, cp);
                if (args.size() < 2) {
                    report(file, t.line, "manifest",
                           t.text + ": expected (manifest, field, ...)");
                } else {
                    addField(joinTokens(toks, args[1].first,
                                        args[1].second),
                             mk, t.line);
                }
                k = cp;
                continue;
            }
            // Raw registration: m.add("name", Kind::Persistent, ...)
            if ((t.text == "add" || t.text == "addChecked" ||
                 t.text == "addDelegated") &&
                k > 0 &&
                (isPunct(toks[k - 1], ".") ||
                 isPunct(toks[k - 1], "->")) &&
                k + 1 < bodyEnd && isPunct(toks[k + 1], "(")) {
                const std::size_t cp = matchBracket(toks, k + 1);
                const auto args = splitArgs(toks, k + 1, cp);
                if (!args.empty() &&
                    toks[args[0].first].type == Token::Str) {
                    char kind = 0;
                    for (std::size_t a = args[0].first; a < cp; ++a) {
                        if (isIdent(toks[a], "Persistent"))
                            kind = 'P';
                        else if (isIdent(toks[a], "Volatile"))
                            kind = 'V';
                        else if (isIdent(toks[a], "EadrFlushed"))
                            kind = 'E';
                        if (kind)
                            break;
                    }
                    if (!kind)
                        report(file, t.line, "manifest",
                               cls + "::stateManifest: cannot infer "
                                     "Kind of raw add()");
                    else
                        addField(
                            literalContent(toks[args[0].first].text),
                            kind, t.line);
                }
                k = cp;
                continue;
            }
        }
        g_manifests[cls].push_back(std::move(mi));
        i = bodyEnd;
    }
}

/** After all files are scanned: tag/member/manifest consistency. */
void
crossCheckStateClasses()
{
    for (const auto &[cls, info] : g_classes) {
        if (!info.stateClass) {
            if (g_requiredStateClasses.count(cls))
                report(info.file, info.line, "state-class",
                       "crash-relevant class '" + cls +
                           "' has no DOLOS_STATE_CLASS marker");
            continue;
        }
        for (const auto &[member, line] : info.members)
            if (!info.tags.count(member))
                report(info.file, line, "state-class",
                       "member '" + member + "' of state class '" +
                           cls +
                           "' lacks a DOLOS_PERSISTENT / "
                           "DOLOS_VOLATILE / DOLOS_EADR_FLUSHED tag");
        for (const auto &[tag, kind] : info.tags)
            if (!info.members.count(tag))
                report(info.file, info.tagLines.at(tag), "state-class",
                       "tag names unknown member '" + tag + "' of '" +
                           cls + "'");

        const auto mit = g_manifests.find(cls);
        if (mit == g_manifests.end()) {
            report(info.file, info.markerLine, "manifest",
                   "state class '" + cls +
                       "' has no stateManifest() definition");
            continue;
        }
        for (const auto &mi : mit->second) {
            for (const auto &[tag, kind] : info.tags) {
                const auto fit = mi.fields.find(tag);
                if (fit == mi.fields.end()) {
                    report(mi.file, mi.line, "manifest",
                           cls + "::stateManifest does not register "
                                 "tagged field '" +
                               tag + "'");
                } else if (fit->second != kind) {
                    report(mi.file, mi.line, "manifest",
                           cls + "::stateManifest registers '" + tag +
                               "' as " + kindWord(fit->second) +
                               " but the header tags it " +
                               kindWord(kind));
                }
            }
            for (const auto &[field, kind] : mi.fields)
                if (!info.tags.count(field))
                    report(mi.file, mi.line, "manifest",
                           cls + "::stateManifest registers '" + field +
                               "' which carries no header tag");
        }
    }
    // Manifests for classes that never declare the marker are fine
    // only if the class is not crash-relevant; a manifest without any
    // class definition at all likely means a typo in the class name.
    for (const auto &[cls, infos] : g_manifests)
        if (!g_classes.count(cls))
            for (const auto &mi : infos)
                report(mi.file, mi.line, "manifest",
                       "stateManifest defined for unknown class '" +
                           cls + "'");
}

// --- check: duplicate stat names ------------------------------------

void
scanStatNames(const std::string &file, const std::vector<Token> &toks)
{
    // (receiver, name) -> line of first registration, per file.
    std::map<std::pair<std::string, std::string>, int> seen;
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.type != Token::Ident ||
            (t.text != "addScalar" && t.text != "addAverage" &&
             t.text != "addHistogram"))
            continue;
        if (!(isPunct(toks[i - 1], ".") || isPunct(toks[i - 1], "->")))
            continue;
        if (!isPunct(toks[i + 1], "("))
            continue;
        const std::string receiver =
            i >= 2 && toks[i - 2].type == Token::Ident ? toks[i - 2].text
                                                       : "?";
        const std::size_t cp = matchBracket(toks, i + 1);
        const auto args = splitArgs(toks, i + 1, cp);
        if (args.size() < 2)
            continue;
        // Name = the first string-literal argument.
        std::string name;
        for (const auto &[b, e] : args) {
            if (toks[b].type == Token::Str) {
                name = literalContent(toks[b].text);
                break;
            }
        }
        if (name.empty())
            continue;
        const auto key = std::make_pair(receiver, name);
        const auto it = seen.find(key);
        if (it != seen.end())
            report(file, t.line, "stat-name",
                   "stat '" + name + "' registered twice on '" +
                       receiver + "' (previous at line " +
                       std::to_string(it->second) + ")");
        else
            seen.emplace(key, t.line);
        i = cp;
    }
}

// --- check: DOLOS_TRACE arity ---------------------------------------

void
scanTraceSites(const std::string &file, const std::vector<Token> &toks)
{
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!isIdent(toks[i], "DOLOS_TRACE") ||
            !isPunct(toks[i + 1], "("))
            continue;
        const std::size_t cp = matchBracket(toks, i + 1);
        const auto args = splitArgs(toks, i + 1, cp);
        if (args.size() != 5)
            report(file, toks[i].line, "trace-arity",
                   "DOLOS_TRACE expects 5 arguments (stage, start, "
                   "end, addr, id), got " +
                       std::to_string(args.size()));
        i = cp;
    }
}

// --- check: DOLOS_PROF_SCOPE component names ------------------------

void
scanProfScopes(const std::string &file, const std::vector<Token> &toks)
{
    // Must mirror prof::Comp in src/sim/profiler.hh: a typo'd
    // component would only fail in DOLOS_SELFPROF=ON builds, so the
    // lint catches it in every configuration.
    static const std::set<std::string> known = {
        "EventKernel", "Core", "CacheModel", "Controller",
        "SecurityEngine", "Aes", "Mac", "Sha", "CtrPad", "Nvm",
        "Verify"};
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (!isIdent(toks[i], "DOLOS_PROF_SCOPE") ||
            !isPunct(toks[i + 1], "("))
            continue;
        const std::size_t cp = matchBracket(toks, i + 1);
        const auto args = splitArgs(toks, i + 1, cp);
        if (args.size() != 1) {
            report(file, toks[i].line, "prof-scope",
                   "DOLOS_PROF_SCOPE expects 1 argument (the "
                   "component), got " +
                       std::to_string(args.size()));
        } else {
            const auto &[b, e] = args[0];
            const bool single_ident =
                e == b + 1 && toks[b].type == Token::Ident;
            if (!single_ident || !known.count(toks[b].text))
                report(file, toks[i].line, "prof-scope",
                       "DOLOS_PROF_SCOPE argument '" +
                           (b < e ? toks[b].text : std::string()) +
                           "' is not a prof::Comp component "
                           "(see src/sim/profiler.hh)");
        }
        i = cp;
    }
}

// --- check: printf-style format/argument agreement ------------------

/** Format-string argument index per checked function. */
const std::map<std::string, std::size_t> g_formatFns = {
    {"printf", 0},   {"fprintf", 1}, {"snprintf", 2},
    {"debugPrintf", 1}, {"inform", 0}, {"warn", 0},
    {"fatal", 0},    {"panic", 0},   {"DOLOS_ASSERT", 1},
};

/** PRI*-style macro -> equivalent conversion tail. */
const std::map<std::string, std::string> g_priMacros = {
    {"PRIu64", "llu"}, {"PRId64", "lld"}, {"PRIi64", "lli"},
    {"PRIx64", "llx"}, {"PRIX64", "llX"}, {"PRIo64", "llo"},
    {"PRIu32", "u"},   {"PRId32", "d"},   {"PRIx32", "x"},
};

/**
 * Count conversions the format string consumes. Returns -1 when the
 * string contains a conversion we cannot parse.
 */
int
countConversions(const std::string &fmt)
{
    int count = 0;
    for (std::size_t i = 0; i < fmt.size(); ++i) {
        if (fmt[i] != '%')
            continue;
        ++i;
        if (i >= fmt.size())
            return -1;
        if (fmt[i] == '%')
            continue;
        while (i < fmt.size() && std::strchr("-+ #0'", fmt[i]))
            ++i;
        if (i < fmt.size() && fmt[i] == '*') {
            ++count;
            ++i;
        } else
            while (i < fmt.size() &&
                   std::isdigit(static_cast<unsigned char>(fmt[i])))
                ++i;
        if (i < fmt.size() && fmt[i] == '.') {
            ++i;
            if (i < fmt.size() && fmt[i] == '*') {
                ++count;
                ++i;
            } else
                while (i < fmt.size() &&
                       std::isdigit(static_cast<unsigned char>(fmt[i])))
                    ++i;
        }
        while (i < fmt.size() && std::strchr("hljztL", fmt[i]))
            ++i;
        if (i >= fmt.size() ||
            !std::strchr("diouxXeEfFgGaAcspn", fmt[i]))
            return -1;
        ++count;
    }
    return count;
}

void
scanFormatCalls(const std::string &file, const std::vector<Token> &toks)
{
    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.type != Token::Ident)
            continue;
        const auto fn = g_formatFns.find(t.text);
        if (fn == g_formatFns.end() || !isPunct(toks[i + 1], "("))
            continue;
        const std::size_t cp = matchBracket(toks, i + 1);
        const auto args = splitArgs(toks, i + 1, cp);
        if (args.size() <= fn->second) {
            i = cp;
            continue; // declaration or unrelated overload
        }
        // The format argument must be purely literal (string-literal
        // concatenation, possibly with PRI* macros); otherwise skip.
        const auto [fb, fe] = args[fn->second];
        std::string fmt;
        bool literal = fb < fe;
        for (std::size_t k = fb; k < fe && literal; ++k) {
            if (toks[k].type == Token::Str)
                fmt += literalContent(toks[k].text);
            else if (toks[k].type == Token::Ident &&
                     g_priMacros.count(toks[k].text))
                fmt += g_priMacros.at(toks[k].text);
            else
                literal = false;
        }
        if (!literal) {
            i = cp;
            continue;
        }
        const int want = countConversions(fmt);
        const int have = int(args.size() - fn->second - 1);
        if (want < 0)
            report(file, t.line, "format",
                   t.text + ": unparsable conversion in format \"" +
                       fmt + "\"");
        else if (want != have)
            report(file, t.line, "format",
                   t.text + ": format \"" + fmt + "\" consumes " +
                       std::to_string(want) + " argument(s) but " +
                       std::to_string(have) + " provided");
        i = cp;
    }
}

// --- check: raw allocations -----------------------------------------

/** Files allowed to use raw allocation (none today). */
const std::set<std::string> g_rawAllocFiles = {};

void
scanRawAllocs(const std::string &file, const std::vector<Token> &toks)
{
    const std::string base = fs::path(file).filename().string();
    if (g_rawAllocFiles.count(base))
        return;
    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.type != Token::Ident)
            continue;
        if (t.text == "new") {
            // `operator new` overloads would be declarations, not use.
            if (i > 0 && isIdent(toks[i - 1], "operator"))
                continue;
            report(file, t.line, "raw-alloc",
                   "raw 'new' (use std:: containers or "
                   "std::make_unique; suppress with "
                   "// dolos-lint: allow(raw-alloc))");
        } else if ((t.text == "malloc" || t.text == "calloc" ||
                    t.text == "realloc") &&
                   i + 1 < toks.size() && isPunct(toks[i + 1], "(")) {
            report(file, t.line, "raw-alloc",
                   "raw '" + t.text + "' (use std:: containers; "
                   "suppress with // dolos-lint: allow(raw-alloc))");
        }
    }
}

// --- check: shared-mutable-state audit ------------------------------
//
// Parallel sweep workers (--jobs N) each run a fully self-contained
// System; the only state that can leak between them is mutable state
// outside a System: namespace-scope variables and function-local
// statics. Every such variable must be thread_local, immutable, or
// carry a DOLOS_THREAD_SHARED(lock) / DOLOS_THREAD_LOCAL_OK
// annotation (sim/thread_annotations.hh) on the line or the two
// lines above it.

/** Last Ident in stmt before an initializer, for the diagnostic. */
std::string
declaredName(const std::vector<Token> &stmt)
{
    std::size_t end = stmt.size();
    for (std::size_t i = 0; i < stmt.size(); ++i)
        if (isPunct(stmt[i], "=") || isPunct(stmt[i], "{}") ||
            isPunct(stmt[i], "[]")) {
            end = i;
            break;
        }
    for (std::size_t i = end; i-- > 0;)
        if (stmt[i].type == Token::Ident)
            return stmt[i].text;
    return "?";
}

void
scanThreadShared(const std::string &file, const std::vector<Token> &toks)
{
    enum class Scope { Namespace, Type, Function };
    std::vector<Scope> scopes;
    std::vector<Token> stmt;
    // Line of the newest un-consumed annotation statement; a
    // declaration within two lines of it passes.
    int pendingAnnotation = -1000;

    const auto atNamespaceScope = [&scopes] {
        for (const Scope s : scopes)
            if (s != Scope::Namespace)
                return false;
        return true;
    };

    const auto evaluate = [&](const std::vector<Token> &st) {
        if (st.empty())
            return;
        const Token &head = st.front();
        if (isIdent(head, "DOLOS_THREAD_SHARED") ||
            isIdent(head, "DOLOS_THREAD_LOCAL_OK")) {
            pendingAnnotation = st.back().line;
            return;
        }
        const bool inFunction =
            !scopes.empty() && scopes.back() == Scope::Function;
        bool flaggable = false;
        const char *what = "";
        if (atNamespaceScope()) {
            for (const char *kw :
                 {"const", "constexpr", "constinit", "thread_local",
                  "using", "typedef", "extern", "friend", "template",
                  "namespace", "operator", "static_assert", "class",
                  "struct", "union", "enum", "concept", "requires"})
                if (containsIdent(st, kw)) {
                    pendingAnnotation = -1000;
                    return;
                }
            const bool hasInit =
                containsPunct(st, "=") || containsPunct(st, "{}");
            if (!hasInit && containsPunct(st, "()")) {
                pendingAnnotation = -1000;
                return; // function declaration
            }
            std::size_t idents = 0;
            for (const auto &t : st)
                idents += t.type == Token::Ident;
            if (!hasInit && idents < 2) {
                pendingAnnotation = -1000;
                return; // not a declaration we can classify
            }
            flaggable = true;
            what = "namespace-scope mutable variable";
        } else if (inFunction) {
            if (!containsIdent(st, "static")) {
                pendingAnnotation = -1000;
                return;
            }
            for (const char *kw : {"const", "constexpr", "constinit",
                                   "thread_local", "static_assert"})
                if (containsIdent(st, kw)) {
                    pendingAnnotation = -1000;
                    return;
                }
            flaggable = true;
            what = "function-local static mutable variable";
        } else {
            pendingAnnotation = -1000;
            return; // class scope: members are per-instance state
        }
        if (flaggable) {
            if (head.line - pendingAnnotation <= 2) {
                pendingAnnotation = -1000; // consumed
                return;
            }
            report(file, head.line, "thread-shared",
                   std::string(what) + " '" + declaredName(st) +
                       "' lacks a DOLOS_THREAD_SHARED(lock) / "
                       "DOLOS_THREAD_LOCAL_OK annotation (or "
                       "thread_local); see "
                       "src/sim/thread_annotations.hh");
        }
    };

    std::size_t i = 0;
    while (i < toks.size()) {
        const Token &t = toks[i];
        if (isPunct(t, "(") || isPunct(t, "[")) {
            const std::size_t close = matchBracket(toks, i);
            stmt.push_back({Token::Punct,
                            t.text == "(" ? "()" : "[]", t.line});
            i = close + 1;
            continue;
        }
        if (isPunct(t, "{")) {
            Scope s;
            if (containsIdent(stmt, "namespace") ||
                containsIdent(stmt, "extern")) {
                s = Scope::Namespace;
            } else if (containsIdent(stmt, "class") ||
                       containsIdent(stmt, "struct") ||
                       containsIdent(stmt, "union") ||
                       containsIdent(stmt, "enum")) {
                s = Scope::Type;
            } else if (containsIdent(stmt, "concept") ||
                       containsIdent(stmt, "requires")) {
                // requires-expression body: part of the enclosing
                // declaration, not a scope.
                const std::size_t close = matchBracket(toks, i);
                stmt.push_back({Token::Punct, "{}", t.line});
                i = close + 1;
                continue;
            } else if (stmt.empty() || containsPunct(stmt, "()") ||
                       containsIdent(stmt, "else") ||
                       containsIdent(stmt, "do") ||
                       containsIdent(stmt, "try")) {
                s = Scope::Function;
            } else {
                // Brace initializer on a declaration: consume the
                // braces, keep accumulating the statement.
                const std::size_t close = matchBracket(toks, i);
                stmt.push_back({Token::Punct, "{}", t.line});
                i = close + 1;
                continue;
            }
            scopes.push_back(s);
            stmt.clear();
            ++i;
            continue;
        }
        if (isPunct(t, "}")) {
            if (!scopes.empty())
                scopes.pop_back();
            stmt.clear();
            ++i;
            continue;
        }
        if (isPunct(t, ";")) {
            evaluate(stmt);
            stmt.clear();
            ++i;
            continue;
        }
        stmt.push_back(t);
        ++i;
    }
}

// --- check: crash-point coverage ------------------------------------
//
// The microstep sweep is exhaustive only while the Step taxonomy and
// the DOLOS_CRASH_POINT hook sites cover each other. Collected per
// file, cross-checked once all files are scanned.

struct StepEnumInfo
{
    std::string file;
    int line = 0;
    std::map<std::string, int> steps; ///< enumerator -> line
};

DOLOS_THREAD_LOCAL_OK; // single-threaded tool
std::vector<StepEnumInfo> g_stepEnums;

struct HookSite
{
    std::string file;
    int line = 0;
    std::string step;
};

DOLOS_THREAD_LOCAL_OK; // single-threaded tool
std::vector<HookSite> g_hookSites;

void
scanCrashPoints(const std::string &file, const std::vector<Token> &toks)
{
    for (std::size_t i = 0; i + 2 < toks.size(); ++i) {
        if (isIdent(toks[i], "enum")) {
            std::size_t k = i + 1;
            if (isIdent(toks[k], "class") || isIdent(toks[k], "struct"))
                ++k;
            if (k >= toks.size() || !isIdent(toks[k], "Step"))
                continue;
            std::size_t j = k + 1;
            while (j < toks.size() && !isPunct(toks[j], "{") &&
                   !isPunct(toks[j], ";"))
                ++j;
            if (j >= toks.size() || !isPunct(toks[j], "{"))
                continue; // forward declaration
            const std::size_t close = matchBracket(toks, j);
            StepEnumInfo info;
            info.file = file;
            info.line = toks[k].line;
            bool expectName = true;
            for (std::size_t m = j + 1; m < close; ++m) {
                if (expectName && toks[m].type == Token::Ident) {
                    if (toks[m].text != "NumSteps")
                        info.steps.emplace(toks[m].text, toks[m].line);
                    expectName = false;
                } else if (isPunct(toks[m], ",")) {
                    expectName = true;
                }
            }
            g_stepEnums.push_back(std::move(info));
            i = close;
            continue;
        }
        if (isIdent(toks[i], "DOLOS_CRASH_POINT") &&
            isPunct(toks[i + 1], "(")) {
            const std::size_t cp = matchBracket(toks, i + 1);
            std::string step;
            for (std::size_t m = i + 2; m < cp; ++m)
                if (toks[m].type == Token::Ident)
                    step = toks[m].text;
            if (step.empty())
                report(file, toks[i].line, "crash-cover",
                       "DOLOS_CRASH_POINT with no step argument");
            else
                g_hookSites.push_back({file, toks[i].line, step});
            i = cp;
        }
    }
}

/**
 * Hook adjacency: inside a function whose name contains drain/flush,
 * every persistent-state mutation (engine secureWrite /
 * writeCiphertext, NVM writeFunctional, redoLog fill/clear) must sit
 * within one statement of a DOLOS_CRASH_POINT hook, so the microstep
 * sweep can land a power failure on either side of it.
 */
void
scanHookAdjacency(const std::string &file,
                  const std::vector<Token> &toks)
{
    const auto nameMatches = [](const std::string &name) {
        std::string lower;
        for (const char c : name)
            lower += char(std::tolower(static_cast<unsigned char>(c)));
        return lower.find("drain") != std::string::npos ||
               lower.find("flush") != std::string::npos;
    };

    for (std::size_t i = 0; i + 1 < toks.size(); ++i) {
        if (toks[i].type != Token::Ident || !isPunct(toks[i + 1], "(") ||
            !nameMatches(toks[i].text))
            continue;
        const std::size_t params = matchBracket(toks, i + 1);
        // A definition header runs from the parameter list to '{'
        // without hitting statement punctuation (calls end in ';' or
        // sit inside a larger expression).
        std::size_t j = params + 1;
        while (j < toks.size() && !isPunct(toks[j], "{") &&
               !isPunct(toks[j], ";") && !isPunct(toks[j], ")") &&
               !isPunct(toks[j], ",") && !isPunct(toks[j], "="))
            ++j;
        if (j >= toks.size() || !isPunct(toks[j], "{"))
            continue;
        const std::size_t body = matchBracket(toks, j);

        // Flatten the body into a linear statement list; braces are
        // statement boundaries too, so "one statement away" crosses
        // into and out of blocks.
        struct Stmt
        {
            bool hook = false;
            bool mutation = false;
            int line = 0;
            std::string what;
        };
        std::vector<Stmt> stmts;
        Stmt cur;
        const auto flush_stmt = [&] {
            if (cur.line)
                stmts.push_back(cur);
            cur = Stmt{};
        };
        std::size_t m = j + 1;
        while (m < body) {
            const Token &t = toks[m];
            if (isPunct(t, "(")) {
                m = matchBracket(toks, m) + 1;
                continue;
            }
            if (isPunct(t, ";") || isPunct(t, "{") || isPunct(t, "}")) {
                flush_stmt();
                ++m;
                continue;
            }
            if (!cur.line)
                cur.line = t.line;
            if (isIdent(t, "DOLOS_CRASH_POINT"))
                cur.hook = true;
            if (t.type == Token::Ident && m > 0 &&
                (isPunct(toks[m - 1], ".") ||
                 isPunct(toks[m - 1], "->")) &&
                (t.text == "secureWrite" ||
                 t.text == "writeCiphertext" ||
                 t.text == "writeFunctional")) {
                cur.mutation = true;
                cur.what = t.text;
            }
            if (isIdent(t, "redoLog") && m + 2 < body &&
                isPunct(toks[m + 1], ".") &&
                (isIdent(toks[m + 2], "fill") ||
                 isIdent(toks[m + 2], "clear"))) {
                cur.mutation = true;
                cur.what = "redoLog." + toks[m + 2].text;
            }
            ++m;
        }
        flush_stmt();

        for (std::size_t s = 0; s < stmts.size(); ++s) {
            if (!stmts[s].mutation)
                continue;
            const bool near_hook =
                stmts[s].hook || (s > 0 && stmts[s - 1].hook) ||
                (s + 1 < stmts.size() && stmts[s + 1].hook);
            if (!near_hook)
                report(file, stmts[s].line, "crash-cover",
                       "persistent-state mutation '" + stmts[s].what +
                           "' in drain/flush function '" +
                           toks[i].text +
                           "' has no DOLOS_CRASH_POINT hook within "
                           "one statement");
        }
        i = body;
    }
}

/** After all files: steps and hooks must cover each other. */
void
crossCheckCrashPoints()
{
    if (g_stepEnums.empty())
        return; // no taxonomy in the linted set: nothing to check
    std::map<std::string, std::pair<std::string, int>> steps;
    for (const auto &e : g_stepEnums)
        for (const auto &[name, line] : e.steps)
            steps.emplace(name, std::make_pair(e.file, line));
    std::set<std::string> hooked;
    for (const auto &h : g_hookSites) {
        if (!steps.count(h.step))
            report(h.file, h.line, "crash-cover",
                   "DOLOS_CRASH_POINT names unregistered step '" +
                       h.step + "' (not an enum class Step member)");
        hooked.insert(h.step);
    }
    for (const auto &[name, loc] : steps)
        if (!hooked.count(name))
            report(loc.first, loc.second, "crash-cover",
                   "registered step '" + name +
                       "' has no DOLOS_CRASH_POINT hook site");
}

// --- check: determinism ---------------------------------------------
//
// Reproducibility is the sweep/torture contract: the same seed must
// replay the same machine, single-threaded or per worker. Two ways
// code silently breaks that: host entropy (rand/time/std engines
// instead of the seeded sim/random.hh streams), and iteration over
// unordered containers feeding sim state (iteration order is
// host-dependent).

/**
 * Names declared with an unordered type, keyed by the declaring
 * file's stem (path minus extension). Resolution is per stem so the
 * header/impl pair share declarations (a member declared in
 * golden_model.hh is visible to loops in golden_model.cc) without
 * common names like 'blocks' colliding across unrelated modules.
 */
DOLOS_THREAD_LOCAL_OK; // single-threaded tool
std::map<std::string, std::set<std::string>> g_unorderedNames;

/** file path -> stem key shared by its header/impl siblings. */
std::string
stemKey(const std::string &file)
{
    fs::path p(file);
    return (p.parent_path() / p.stem()).string();
}

struct RangeForSite
{
    std::string file;
    int line = 0;
    std::string name;
};

DOLOS_THREAD_LOCAL_OK; // single-threaded tool
std::vector<RangeForSite> g_rangeForSites;

void
scanDeterminism(const std::string &file, const std::vector<Token> &toks)
{
    static const std::set<std::string> engines = {
        "random_device", "mt19937",      "mt19937_64",
        "minstd_rand",   "minstd_rand0", "default_random_engine",
        "knuth_b",       "ranlux24",     "ranlux48"};
    static const std::set<std::string> calls = {
        "rand", "srand", "rand_r", "drand48", "lrand48", "mrand48"};
    static const std::set<std::string> unordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};

    for (std::size_t i = 0; i < toks.size(); ++i) {
        const Token &t = toks[i];
        if (t.type != Token::Ident)
            continue;
        const bool member_access =
            i > 0 &&
            (isPunct(toks[i - 1], ".") || isPunct(toks[i - 1], "->"));
        if (engines.count(t.text) && !member_access) {
            report(file, t.line, "determinism",
                   "'" + t.text +
                       "' bypasses the seeded dolos::Random streams "
                       "(use sim/random.hh)");
            continue;
        }
        bool call = i + 1 < toks.size() && isPunct(toks[i + 1], "(");
        if (call) {
            // A definition/declaration of a same-named member is not
            // a call: its parameter list is followed by a body.
            const std::size_t close = matchBracket(toks, i + 1);
            if (close + 1 < toks.size() &&
                isPunct(toks[close + 1], "{"))
                call = false;
        }
        if (call && !member_access &&
            (calls.count(t.text) || t.text == "time")) {
            report(file, t.line, "determinism",
                   "call to '" + t.text +
                       "()' is not seed-reproducible; use "
                       "dolos::Random (sim/random.hh)");
            continue;
        }
        // Unordered-container declaration: remember the variable name
        // so range-for sites over it can be flagged, cross-file.
        if (unordered.count(t.text) && i + 1 < toks.size() &&
            isPunct(toks[i + 1], "<")) {
            int depth = 0;
            std::size_t k = i + 1;
            for (; k < toks.size(); ++k) {
                if (isPunct(toks[k], "<"))
                    depth += 1;
                else if (isPunct(toks[k], "<<"))
                    depth += 2;
                else if (isPunct(toks[k], ">"))
                    depth -= 1;
                else if (isPunct(toks[k], ">>"))
                    depth -= 2;
                if (depth <= 0)
                    break;
            }
            ++k;
            while (k < toks.size() &&
                   (isPunct(toks[k], "&") || isPunct(toks[k], "*") ||
                    isIdent(toks[k], "const")))
                ++k;
            if (k + 1 < toks.size() && toks[k].type == Token::Ident &&
                !isPunct(toks[k + 1], "("))
                g_unorderedNames[stemKey(file)].insert(toks[k].text);
            continue;
        }
        // Range-for: record the last identifier of the range
        // expression; resolved against g_unorderedNames at the end.
        if (isIdent(t, "for") && i + 1 < toks.size() &&
            isPunct(toks[i + 1], "(")) {
            const std::size_t cp = matchBracket(toks, i + 1);
            int depth = 0;
            std::size_t colon = 0;
            for (std::size_t m = i + 2; m < cp; ++m) {
                if (toks[m].type != Token::Punct)
                    continue;
                const std::string &p = toks[m].text;
                if (p == "(" || p == "[" || p == "{")
                    ++depth;
                else if (p == ")" || p == "]" || p == "}")
                    --depth;
                else if (p == ":" && depth == 0) {
                    colon = m;
                    break;
                }
            }
            if (!colon)
                continue;
            std::string name;
            for (std::size_t m = colon + 1; m < cp; ++m)
                if (toks[m].type == Token::Ident)
                    name = toks[m].text;
            if (!name.empty())
                g_rangeForSites.push_back({file, t.line, name});
        }
    }
}

/** After all files: flag range-fors over known-unordered names. */
void
crossCheckDeterminism()
{
    for (const auto &site : g_rangeForSites) {
        const auto it = g_unorderedNames.find(stemKey(site.file));
        if (it != g_unorderedNames.end() && it->second.count(site.name))
            report(site.file, site.line, "determinism",
                   "range-for over unordered container '" + site.name +
                       "': iteration order is host-dependent and must "
                       "not feed sim state (sort into a vector, or "
                       "annotate // dolos-lint: allow(determinism))");
    }
}

// --- driver ---------------------------------------------------------

void
lintFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        std::fprintf(stderr, "dolos_lint: cannot read %s\n",
                     path.c_str());
        std::exit(2);
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const std::string src = ss.str();
    const auto toks = tokenize(path, src);

    for (std::size_t i = 0; i < toks.size();) {
        const std::size_t next = maybeParseClass(path, toks, i);
        i = next == i ? i + 1 : next;
    }
    scanManifests(path, toks);
    scanStatNames(path, toks);
    scanTraceSites(path, toks);
    scanProfScopes(path, toks);
    scanFormatCalls(path, toks);
    scanRawAllocs(path, toks);
    scanThreadShared(path, toks);
    scanCrashPoints(path, toks);
    scanHookAdjacency(path, toks);
    scanDeterminism(path, toks);
}

bool
isSourceFile(const fs::path &p)
{
    const auto ext = p.extension().string();
    return ext == ".hh" || ext == ".cc" || ext == ".cpp" ||
           ext == ".hpp" || ext == ".h";
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> files;
    const auto parseCheckList = [](const std::string &csv,
                                   const char *flag) {
        std::vector<std::string> names;
        std::string cur;
        for (const char c : csv + ",") {
            if (c == ',') {
                if (!cur.empty())
                    names.push_back(cur);
                cur.clear();
            } else {
                cur += c;
            }
        }
        for (const auto &n : names)
            if (!isKnownCheck(n)) {
                std::fprintf(stderr,
                             "dolos_lint: %s: unknown check '%s' "
                             "(see --list-checks)\n",
                             flag, n.c_str());
                std::exit(2);
            }
        return names;
    };
    std::vector<std::string> skipChecks;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        if (a == "--help" || a == "-h") {
            std::printf(
                "usage: dolos_lint [options] PATH...\n"
                "  --list-checks     print the check registry and "
                "exit\n"
                "  --only A,B        run only the named checks\n"
                "  --skip A,B        run all but the named checks\n"
                "  exit: 0 clean, 1 violations, 2 usage\n");
            return 0;
        }
        if (a == "--list-checks") {
            for (const auto &c : g_checkTable)
                std::printf("%-14s %s\n", c.name, c.summary);
            return 0;
        }
        if (a == "--only" || a == "--skip") {
            if (i + 1 >= argc) {
                std::fprintf(stderr,
                             "dolos_lint: %s needs a comma-separated "
                             "check list\n",
                             a.c_str());
                return 2;
            }
            const auto names = parseCheckList(argv[++i], a.c_str());
            if (a == "--only")
                g_enabledChecks.insert(names.begin(), names.end());
            else
                skipChecks.insert(skipChecks.end(), names.begin(),
                                  names.end());
            continue;
        }
        std::error_code ec;
        if (fs::is_directory(a, ec)) {
            for (const auto &e :
                 fs::recursive_directory_iterator(a, ec))
                if (e.is_regular_file() && isSourceFile(e.path()))
                    files.push_back(e.path().string());
        } else if (fs::is_regular_file(a, ec)) {
            files.push_back(a);
        } else {
            std::fprintf(stderr, "dolos_lint: no such path: %s\n",
                         a.c_str());
            return 2;
        }
    }
    if (files.empty()) {
        std::fprintf(stderr,
                     "usage: dolos_lint PATH...  (see --help)\n");
        return 2;
    }
    std::sort(files.begin(), files.end());

    if (!skipChecks.empty()) {
        if (g_enabledChecks.empty())
            for (const auto &c : g_checkTable)
                g_enabledChecks.insert(c.name);
        for (const auto &n : skipChecks)
            g_enabledChecks.erase(n);
    }

    for (const auto &f : files)
        lintFile(f);
    crossCheckStateClasses();
    crossCheckCrashPoints();
    crossCheckDeterminism();

    std::sort(g_violations.begin(), g_violations.end());
    for (const auto &v : g_violations)
        std::printf("%s:%d: [%s] %s\n", v.file.c_str(), v.line,
                    v.check.c_str(), v.msg.c_str());
    std::printf("dolos_lint: %zu file(s), %zu violation(s)\n",
                files.size(), g_violations.size());
    return g_violations.empty() ? 0 : 1;
}
