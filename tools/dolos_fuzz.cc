/**
 * @file
 * dolos_fuzz — randomized differential fault campaigns.
 *
 * Each episode runs one workload on one controller organization with
 * the golden reference machine attached, crashes it at a seeded
 * operation, optionally injects one fault, and checks the outcome
 * contract:
 *
 *   no fault       : structure verified, oracle clean, no alarms
 *   injected attack: the attack-detected flag must be raised, OR the
 *                    fault was absorbed harmlessly (structure + oracle
 *                    both clean)
 *   dropped CLWB   : never an alarm (it is a software bug, not an
 *                    attack); the oracle's catches are reported
 *
 * On any violated contract the tool prints a one-line repro:
 *
 *   REPRO: dolos_fuzz --mode M --workload W --seed S --crash-op N
 *          --fault F --opt-knobs K
 *
 * which re-runs exactly that episode (the knob state is part of the
 * machine under test, so every repro line spells it out). Campaigns:
 *
 *   dolos_fuzz --campaign smoke     (CI: ~2 episodes per mode+workload)
 *   dolos_fuzz --campaign nightly   (8 episodes per mode+workload)
 */

#include <atomic>
#include <cstdio>
#include <cstring>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "sim/exit_codes.hh"
#include "sim/heartbeat.hh"
#include "sim/thread_annotations.hh"
#include "verify/diff_oracle.hh"
#include "verify/fault_injector.hh"
#include "workloads/runner.hh"

using namespace dolos;
using namespace dolos::verify;
using namespace dolos::workloads;

namespace
{

struct EpisodeSpec
{
    SecurityMode mode = SecurityMode::DolosPartialWpq;
    std::string workload = "hashmap";
    std::uint64_t seed = 1;
    std::uint64_t crashOp = 200;
    FaultKind fault = FaultKind::None;
};

struct EpisodeOutcome
{
    bool passed = false;
    bool attackDetected = false;
    bool structureVerified = false;
    std::uint64_t oracleViolations = 0;
    std::string note;
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: dolos_fuzz [--campaign smoke|nightly] [options]\n"
        "       dolos_fuzz --mode M --workload W --seed S"
        " --crash-op N --fault F\n"
        "  --mode MODE      ideal|baseline|post-unprotected|"
        "dolos-full|dolos-partial|dolos-post\n"
        "  --workload NAME  hashmap|ctree|btree|rbtree|nstore-ycsb|"
        "redis\n"
        "  --fault F        none|data-flip|mac-flip|counter-rollback|"
        "bmt-flip|torn-adr-dump|dropped-clwb|\n"
        "                   media-transient|media-stuck|"
        "media-write-fail\n"
        "  --opt-knobs K    persist-path lever set: all|none|"
        "comma list of\n"
        "                   bmt-pipeline,drain-batch,tag-prefetch"
        "[,bmt-window=N]\n"
        "  --heartbeat N    emit an NDJSON progress record to "
        "stderr every N episodes\n"
        "                   (campaigns; default 5, 0 = off)\n"
        "  --jobs N         worker threads for campaign episodes "
        "(default 1;\n"
        "                   verdicts are bit-identical to --jobs 1)\n"
        "  --summary-json FILE  write the campaign-summary record\n"
        "  --seed N | --crash-op N | --txns N | --help\n");
    std::exit(code);
}

const char *
modeCliName(SecurityMode mode)
{
    switch (mode) {
      case SecurityMode::NonSecureIdeal:
        return "ideal";
      case SecurityMode::PreWpqSecure:
        return "baseline";
      case SecurityMode::PostWpqUnprotected:
        return "post-unprotected";
      case SecurityMode::DolosFullWpq:
        return "dolos-full";
      case SecurityMode::DolosPartialWpq:
        return "dolos-partial";
      case SecurityMode::DolosPostWpq:
        return "dolos-post";
      case SecurityMode::EadrSecure:
        return "eadr";
    }
    return "?";
}

DOLOS_THREAD_LOCAL_OK; // parsed in main() before any worker starts
std::uint64_t episodeTxns = 4;
DOLOS_THREAD_LOCAL_OK; // parsed in main() before any worker starts
OptKnobs gOptKnobs; ///< defaults to all levers on

SystemConfig
smallConfig(SecurityMode mode)
{
    auto cfg = SystemConfig::paperDefault();
    applyOptKnobs(cfg, gOptKnobs);
    cfg.mode = mode;
    cfg.secure.functionalLeaves = 8192;
    cfg.secure.map.protectedBytes = Addr(8192) * pageBytes;
    cfg.hierarchy.l1 = {"l1", 1024, 2, 2};
    cfg.hierarchy.l2 = {"l2", 4096, 4, 20};
    cfg.hierarchy.llc = {"llc", 16384, 8, 32};
    return cfg;
}

WorkloadParams
smallParams(std::uint64_t seed)
{
    WorkloadParams p;
    p.txSize = 256;
    p.numKeys = 48;
    p.seed = seed;
    p.thinkTime = 400;
    p.readsPerTx = 1;
    return p;
}

/** Faults this episode's mode can meaningfully receive. */
std::vector<FaultKind>
applicableFaults(SecurityMode mode)
{
    if (mode == SecurityMode::NonSecureIdeal)
        return {FaultKind::None, FaultKind::DroppedClwb,
                FaultKind::MediaTransient};
    std::vector<FaultKind> kinds = {
        FaultKind::None,           FaultKind::DataFlip,
        FaultKind::MacFlip,        FaultKind::CounterRollback,
        FaultKind::BmtFlip,        FaultKind::DroppedClwb,
        FaultKind::MediaTransient, FaultKind::MediaStuck,
        FaultKind::MediaWriteFail,
    };
    if (isDolosMode(mode))
        kinds.push_back(FaultKind::TornAdrDump);
    return kinds;
}

EpisodeOutcome
runEpisode(const EpisodeSpec &spec)
{
    EpisodeOutcome out;
    System sys(smallConfig(spec.mode));
    GoldenModel golden;
    sys.core().setObserver(&golden);
    FaultInjector inj(sys, spec.seed);

    auto wl = makeWorkload(spec.workload, smallParams(spec.seed));

    InjectionRecord rec;
    if (spec.fault == FaultKind::TornAdrDump) {
        const unsigned entries =
            sys.config().wpq.entriesFor(spec.mode);
        rec = inj.armTornAdrDump(unsigned(spec.seed % entries));
    } else if (spec.fault == FaultKind::DroppedClwb) {
        rec = inj.armDroppedClwb(spec.seed % 64);
    }

    CrashPlan plan;
    plan.atOp = spec.crashOp;
    const auto res = runWorkload(sys, *wl, episodeTxns, plan);

    const bool image_fault = spec.fault == FaultKind::DataFlip ||
                             spec.fault == FaultKind::MacFlip ||
                             spec.fault == FaultKind::CounterRollback ||
                             spec.fault == FaultKind::BmtFlip;
    const bool media_fault = spec.fault == FaultKind::MediaTransient ||
                             spec.fault == FaultKind::MediaStuck ||
                             spec.fault == FaultKind::MediaWriteFail;
    if (media_fault) {
        // Power-cycle to cold caches so the provoking access is a
        // real NVM demand read/write, then wound the device.
        sys.crash();
        sys.recoverToCompletion();
        rec = inj.inject(spec.fault);
        if (rec.injected) {
            if (spec.fault == FaultKind::MediaWriteFail) {
                // Rewrite the victim so the failing write path has
                // to retry and eventually quarantine.
                const Block cur =
                    sys.nvmDevice().readFunctional(rec.victim);
                sys.core().store(rec.victim, cur.data(), blockSize);
                sys.core().clwb(rec.victim);
                sys.core().sfence();
                sys.core().compute(1'000'000);
                sys.controller().drainTo(sys.core().now());
            } else {
                // A stuck cell is *expected* to read back as
                // quarantined zeros — that is the graceful-degradation
                // contract, not a violation, so the provoking load
                // bypasses the oracle. A transient flip must heal, so
                // its load stays adjudicated.
                const bool expect_zeros =
                    spec.fault == FaultKind::MediaStuck;
                if (expect_zeros)
                    sys.core().setObserver(nullptr);
                Block buf;
                sys.core().load(rec.victim, buf.data(), blockSize);
                if (expect_zeros)
                    sys.core().setObserver(&golden);
            }
        }
    } else if (image_fault) {
        // Second power cycle: quiesce the caches and the ADR dump,
        // then attack the powered-off (rollback) or recovered (flip)
        // image and provoke the relevant check.
        sys.crash();
        if (spec.fault == FaultKind::CounterRollback)
            rec = inj.inject(spec.fault);
        sys.recover();
        if (spec.fault != FaultKind::CounterRollback) {
            rec = inj.inject(spec.fault);
            if (rec.injected) {
                Block buf;
                sys.core().load(rec.victim, buf.data(), blockSize);
            }
        }
    } else if (spec.fault == FaultKind::TornAdrDump && !res.crashed) {
        // The seeded crash op landed beyond the run; the armed tear
        // never fired. Fire it now so the episode still tests it.
        sys.crash();
        sys.recover();
    }

    // Blocks a media fault rendered unrecoverable are expected to
    // diverge (they read back as quarantined zeros); the oracle must
    // still hold on every healthy block.
    std::set<Addr> skip;
    for (const Addr block : golden.trackedBlocks())
        if (sys.nvmDevice().hasUnhealableFault(block))
            skip.insert(blockAlign(block));
    const auto report = checkAgainstGolden(sys, golden, skip);
    sys.core().setObserver(nullptr);

    out.attackDetected = sys.attackDetected();
    out.structureVerified = res.verified;
    out.oracleViolations = report.violations;
    const bool clean =
        res.verified && report.clean() && !out.attackDetected;

    switch (spec.fault) {
      case FaultKind::None:
        out.passed = clean;
        if (!out.passed)
            out.note = res.verified ? report.summary()
                                    : res.verifyDiagnostic;
        break;
      case FaultKind::DroppedClwb:
        // Losing a flush is a software/platform bug: it must never
        // masquerade as an attack. Oracle catches are the expected
        // signal when the lost flush mattered.
        out.passed = !out.attackDetected;
        if (report.violations > 0 || !res.verified)
            out.note = "oracle caught the dropped flush";
        break;
      case FaultKind::MediaTransient:
        // A one-shot device flip must be healed by the bounded retry:
        // no alarm, no quarantine, no divergence.
        out.passed = clean && !sys.unrecoverableMedia();
        if (!out.passed)
            out.note = "transient media fault not healed: " +
                       report.summary();
        break;
      case FaultKind::MediaStuck:
      case FaultKind::MediaWriteFail:
        // An unhealable cell must be disambiguated from tamper: the
        // block is quarantined (unrecoverable-media, NOT an attack
        // alarm) and every healthy block still verifies.
        out.passed = !out.attackDetected && report.clean() &&
                     (!rec.injected || sys.unrecoverableMedia());
        if (!out.passed)
            out.note = out.attackDetected
                           ? "media fault misreported as attack"
                           : "quarantine missing or collateral "
                             "damage: " + report.summary();
        break;
      default:
        // An injected attack must be detected — or fully absorbed
        // with no divergence at all (e.g. the tear had nothing to
        // tear off). Silent corruption fails the episode.
        out.passed = out.attackDetected ||
                     (res.verified && report.clean());
        if (!out.passed)
            out.note = "silent corruption: " + report.summary();
        break;
    }
    if (rec.kind != FaultKind::None && !rec.detail.empty() &&
        out.note.empty())
        out.note = rec.detail;
    return out;
}

void
printRepro(const EpisodeSpec &spec)
{
    std::printf("REPRO: dolos_fuzz --mode %s --workload %s --seed %llu"
                " --crash-op %llu --fault %s --opt-knobs %s\n",
                modeCliName(spec.mode), spec.workload.c_str(),
                (unsigned long long)spec.seed,
                (unsigned long long)spec.crashOp,
                faultKindName(spec.fault),
                formatOptKnobs(gOptKnobs).c_str());
}

DOLOS_THREAD_LOCAL_OK; // parsed in main() before any worker starts
std::uint64_t heartbeatEvery = 5;
DOLOS_THREAD_LOCAL_OK; // parsed in main() before any worker starts
std::string summaryJsonFile;
DOLOS_THREAD_LOCAL_OK; // parsed in main() before any worker starts
unsigned campaignJobs = 1;

int
runCampaign(const std::string &name, std::uint64_t base_seed)
{
    unsigned episodes_per_combo = 0;
    if (name == "smoke") {
        episodes_per_combo = 2;
    } else if (name == "nightly") {
        episodes_per_combo = 8;
    } else {
        std::fprintf(stderr, "unknown campaign '%s'\n", name.c_str());
        usage(ExitUsage);
    }

    const SecurityMode modes[] = {
        SecurityMode::NonSecureIdeal,
        SecurityMode::PreWpqSecure,
        SecurityMode::PostWpqUnprotected,
        SecurityMode::DolosFullWpq,
        SecurityMode::DolosPartialWpq,
        SecurityMode::DolosPostWpq,
    };

    // Always announce the base seed: a red campaign must be
    // re-runnable from the log alone.
    std::printf("campaign %s: base seed %llu, opt-knobs %s, jobs %u "
                "(replay: dolos_fuzz --campaign %s --seed %llu "
                "--opt-knobs %s)\n",
                name.c_str(), (unsigned long long)base_seed,
                formatOptKnobs(gOptKnobs).c_str(), campaignJobs,
                name.c_str(), (unsigned long long)base_seed,
                formatOptKnobs(gOptKnobs).c_str());

    // Materialize the episode list first: the spec for every episode
    // is a pure function of (base seed, mode, workload, episode
    // index), so the parallel phase can hand specs to workers by
    // index and the verdict set is identical for any --jobs value.
    std::vector<EpisodeSpec> specs;
    for (const auto mode : modes) {
        const auto faults = applicableFaults(mode);
        unsigned fault_cursor = unsigned(base_seed % faults.size());
        for (const auto &wl : workloadNames()) {
            for (unsigned ep = 0; ep < episodes_per_combo; ++ep) {
                EpisodeSpec spec;
                spec.mode = mode;
                spec.workload = wl;
                spec.fault = faults[fault_cursor++ % faults.size()];
                // Mix the coordinates into distinct per-episode seeds.
                spec.seed = base_seed * 1000003ULL +
                            unsigned(mode) * 131ULL +
                            std::hash<std::string>{}(wl) % 1009 +
                            ep * 7919ULL;
                spec.crashOp = 1 + spec.seed % 1500;
                specs.push_back(spec);
            }
        }
    }

    unsigned total = 0, failed = 0, detected = 0, oracle_catches = 0;
    CampaignMonitor monitor("fuzz-" + name, specs.size(),
                            heartbeatEvery);
    std::vector<EpisodeOutcome> outcomes(specs.size());
    const unsigned jobs = unsigned(std::min<std::size_t>(
        std::max(1u, campaignJobs), specs.size()));
    if (jobs <= 1) {
        for (std::size_t k = 0; k < specs.size(); ++k) {
            outcomes[k] = runEpisode(specs[k]);
            monitor.caseDone(specs[k].seed, !outcomes[k].passed);
        }
    } else {
        std::atomic<std::size_t> next{0};
        std::vector<std::thread> workers;
        workers.reserve(jobs);
        for (unsigned w = 0; w < jobs; ++w)
            workers.emplace_back([&] {
                for (;;) {
                    const std::size_t k =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (k >= specs.size())
                        return;
                    outcomes[k] = runEpisode(specs[k]);
                    monitor.caseDone(specs[k].seed,
                                     !outcomes[k].passed);
                }
            });
        for (auto &t : workers)
            t.join();
    }
    // Report serially in campaign order: the failure log and REPRO
    // lines read the same however many workers ran the episodes.
    for (std::size_t k = 0; k < specs.size(); ++k) {
        const auto &out = outcomes[k];
        ++total;
        detected += out.attackDetected;
        oracle_catches += out.oracleViolations > 0;
        if (!out.passed) {
            ++failed;
            std::printf("FAIL [%s/%s fault=%s]: %s\n",
                        securityModeName(specs[k].mode),
                        specs[k].workload.c_str(),
                        faultKindName(specs[k].fault),
                        out.note.c_str());
            printRepro(specs[k]);
        }
    }
    monitor.finish();
    if (!summaryJsonFile.empty() &&
        !monitor.writeSummary(summaryJsonFile)) {
        std::fprintf(stderr, "cannot write %s\n",
                     summaryJsonFile.c_str());
        return ExitUsage;
    }
    std::printf("campaign %s: %u episodes, %u failed, %u attack "
                "detections, %u oracle catches\n",
                name.c_str(), total, failed, detected, oracle_catches);
    return failed ? ExitViolation : ExitOk;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string campaign;
    EpisodeSpec spec;
    bool single = false;
    std::uint64_t seed = 1;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             a.c_str());
                usage(ExitUsage);
            }
            return argv[++i];
        };
        if (a == "--campaign") {
            campaign = value();
        } else if (a == "--mode") {
            const auto m = parseSecurityMode(value());
            if (!m) {
                std::fprintf(stderr, "unknown mode '%s'\n", argv[i]);
                usage(ExitUsage);
            }
            spec.mode = *m;
            single = true;
        } else if (a == "--workload") {
            spec.workload = value();
            single = true;
        } else if (a == "--seed") {
            seed = std::strtoull(value(), nullptr, 0);
        } else if (a == "--crash-op") {
            spec.crashOp = std::strtoull(value(), nullptr, 0);
            single = true;
        } else if (a == "--txns") {
            episodeTxns = std::strtoull(value(), nullptr, 0);
        } else if (a == "--heartbeat") {
            heartbeatEvery = std::strtoull(value(), nullptr, 0);
        } else if (a == "--jobs") {
            campaignJobs =
                unsigned(std::strtoull(value(), nullptr, 0));
            if (campaignJobs == 0) {
                std::fprintf(stderr, "--jobs must be >= 1\n");
                usage(ExitUsage);
            }
        } else if (a == "--summary-json") {
            summaryJsonFile = value();
        } else if (a == "--opt-knobs") {
            const auto knobs = parseOptKnobs(value());
            if (!knobs) {
                std::fprintf(stderr, "bad --opt-knobs spec '%s'\n",
                             argv[i]);
                usage(ExitUsage);
            }
            gOptKnobs = *knobs;
        } else if (a == "--fault") {
            const auto kind = parseFaultKind(value());
            if (!kind) {
                std::fprintf(stderr, "unknown fault '%s'\n", argv[i]);
                usage(ExitUsage);
            }
            spec.fault = *kind;
            single = true;
        } else if (a == "--help" || a == "-h") {
            usage(ExitOk);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage(ExitUsage);
        }
    }

    if (!campaign.empty() && single) {
        std::fprintf(stderr,
                     "--campaign and single-episode options are "
                     "mutually exclusive\n");
        usage(ExitUsage);
    }
    if (campaign.empty() && !single)
        campaign = "smoke";

    if (!campaign.empty())
        return runCampaign(campaign, seed);

    spec.seed = seed;
    const auto out = runEpisode(spec);
    std::printf("episode %s/%s fault=%s crash-op=%llu: %s "
                "(attack=%d structure=%d oracle-violations=%llu)%s%s\n",
                modeCliName(spec.mode), spec.workload.c_str(),
                faultKindName(spec.fault),
                (unsigned long long)spec.crashOp,
                out.passed ? "PASS" : "FAIL", int(out.attackDetected),
                int(out.structureVerified),
                (unsigned long long)out.oracleViolations,
                out.note.empty() ? "" : " — ", out.note.c_str());
    if (!out.passed) {
        printRepro(spec);
        return 1;
    }
    return 0;
}
