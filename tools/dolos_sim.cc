/**
 * @file
 * dolos_sim — command-line front end to the simulator.
 *
 * Runs one workload on one controller configuration and prints the
 * run metrics (and optionally the full statistics tree). Examples:
 *
 *   dolos_sim --workload btree --mode dolos-partial --txns 2000
 *   dolos_sim --workload redis --mode baseline --tx-size 512 --stats
 *   dolos_sim --workload hashmap --mode dolos-post --crash-at 5000
 *   dolos_sim --workload hashmap --mode full_wpq \
 *             --trace t.json --stats-json s.json
 *   dolos_sim --list
 */

#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>
#include <optional>
#include <stdexcept>

#include "sim/exit_codes.hh"
#include "sim/stat_sampler.hh"
#include "sim/trace.hh"
#include "verify/fault_injector.hh"
#include "verify/manifest_check.hh"
#include "verify/perf_equiv.hh"
#include "workloads/runner.hh"
#include "workloads/selfbench.hh"

using namespace dolos;
using namespace dolos::workloads;

namespace
{

struct Options
{
    std::string workload = "hashmap";
    std::string mode = "dolos-partial";
    std::uint64_t txns = 1000;
    unsigned txSize = 1024;
    std::uint64_t numKeys = 1024;
    std::uint64_t seed = 42;
    Cycles thinkTime = 60000;
    unsigned wpqBudget = 16;
    std::string tree = "eager";
    std::string crashScheme = "anubis";
    std::optional<std::uint64_t> crashAt;
    bool stats = false;
    bool noCoalescing = false;
    std::string traceFile;     ///< --trace: Chrome trace_event JSON
    std::string statsJsonFile; ///< --stats-json: machine-readable stats
    std::string injectFault;   ///< --inject-fault: post-run fault kind
    std::string mediaRegion = "data"; ///< --media-region: fault target
    std::string damageJsonFile; ///< --damage-json: media damage report
    std::uint64_t scrubInterval = 0;  ///< --scrub-interval (0 = off)
    std::optional<unsigned> spares;   ///< --spares: NVM spare frames
    std::optional<std::uint64_t> eadrBudget; ///< --eadr-budget cycles
    bool verifyManifest = false; ///< --verify-manifest: crash-state check
    bool verifyPerfEquiv = false; ///< --verify-perf-equiv: timing diff
    std::string optKnobs; ///< --opt-knobs: none|all|comma list
    std::uint64_t sampleInterval = 0; ///< --sample-interval (0 = off)
    std::string timelineFile; ///< --stats-timeline (.csv => CSV)
    bool selfbench = false;   ///< --selfbench: host-speed self-profile
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: dolos_sim [options]\n"
        "  --workload NAME     hashmap|ctree|btree|rbtree|nstore-ycsb|"
        "redis (--list)\n"
        "  --mode MODE         ideal|baseline|post-unprotected|"
        "dolos-full|dolos-partial|dolos-post|eadr\n"
        "                      (aliases: full_wpq|partial_wpq|post_wpq)\n"
        "  --eadr-budget N     eADR holdup energy budget in cycles\n"
        "                      (nonzero; an under-provisioned budget\n"
        "                      quarantines the unflushed tail -> exit 4)\n"
        "  --txns N            transactions to run (default 1000)\n"
        "  --tx-size BYTES     payload per transaction (default 1024)\n"
        "  --keys N            key-space size (default 1024)\n"
        "  --think CYCLES      modeled compute per tx (default 60000)\n"
        "  --wpq N             ADR budget entries (default 16)\n"
        "  --tree eager|lazy   integrity-tree scheme (default eager)\n"
        "  --crash-scheme anubis|osiris\n"
        "  --crash-at OP       inject a power failure at env op OP\n"
        "  --no-coalescing     disable the WPQ tag-array coalescing\n"
        "  --trace FILE        write a Chrome trace_event JSON of the\n"
        "                      persist critical path (chrome://tracing)\n"
        "  --stats-json FILE   write run metrics + stat tree as JSON\n"
        "  --inject-fault KIND inject one fault after the run: "
        "data-flip|mac-flip|\n"
        "                      counter-rollback|bmt-flip|"
        "media-transient|media-stuck|\n"
        "                      media-write-fail\n"
        "  --media-fault K     alias: transient|stuck|write-fail\n"
        "  --media-region R    data|counter|tree|mac — which region a\n"
        "                      media transient/stuck fault lands in\n"
        "                      (metadata faults inject BEFORE the\n"
        "                      crash so recovery must repair them)\n"
        "  --scrub-interval N  opt-in background metadata scrub every\n"
        "                      N secure writes (0 = off)\n"
        "  --spares N          NVM spare frames for remapping worn\n"
        "                      metadata (0 forces cascade-quarantine)\n"
        "  --damage-json FILE  write the media damage report "
        "('-' = stdout)\n"
        "  --verify-manifest   run the power-loss differential of the\n"
        "                      annotated crash-state model in the three\n"
        "                      Mi-SU modes plus eadr, then exit "
        "(uses --seed)\n"
        "  --verify-perf-equiv run the timing-vs-state differential of\n"
        "                      the persist-path optimization knobs\n"
        "                      (off vs on) over the tier-1 workloads in\n"
        "                      all three Mi-SU modes, then exit\n"
        "  --opt-knobs SPEC    persist-path optimizations: none|all|\n"
        "                      comma list of bmt-pipeline,drain-batch,\n"
        "                      tag-prefetch (default none)\n"
        "  --sample-interval N sample the stat tree every N simulated\n"
        "                      cycles into a windowed timeline\n"
        "  --stats-timeline F  write the timeline to F (JSON, or CSV\n"
        "                      when F ends in .csv); needs\n"
        "                      --sample-interval\n"
        "  --selfbench         benchmark the simulator itself: report\n"
        "                      simulated instructions/sec and, when\n"
        "                      compiled in, per-component host-time\n"
        "                      attribution, then exit\n"
        "  --seed N | --stats | --list | --help\n"
        "exit codes: 0 ok, 1 verification failure, 2 usage, "
        "3 attack alarm,\n"
        "            4 unrecoverable media fault\n");
    std::exit(code);
}

/** Strict base-0 integer parse: the whole token must be a number. */
std::uint64_t
parseNum(const char *opt, const char *text)
{
    char *end = nullptr;
    const std::uint64_t v = std::strtoull(text, &end, 0);
    if (end == text || *end != '\0') {
        std::fprintf(stderr, "bad numeric value '%s' for %s\n", text,
                     opt);
        usage(ExitUsage);
    }
    return v;
}

Options
parse(int argc, char **argv)
{
    Options o;
    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             a.c_str());
                usage(ExitUsage);
            }
            return argv[++i];
        };
        auto numValue = [&]() { return parseNum(a.c_str(), value()); };
        if (a == "--workload")
            o.workload = value();
        else if (a == "--mode")
            o.mode = value();
        else if (a == "--txns")
            o.txns = numValue();
        else if (a == "--tx-size")
            o.txSize = unsigned(numValue());
        else if (a == "--keys")
            o.numKeys = numValue();
        else if (a == "--think")
            o.thinkTime = numValue();
        else if (a == "--wpq")
            o.wpqBudget = unsigned(numValue());
        else if (a == "--tree")
            o.tree = value();
        else if (a == "--crash-scheme")
            o.crashScheme = value();
        else if (a == "--crash-at")
            o.crashAt = numValue();
        else if (a == "--seed")
            o.seed = numValue();
        else if (a == "--stats")
            o.stats = true;
        else if (a == "--no-coalescing")
            o.noCoalescing = true;
        else if (a == "--trace")
            o.traceFile = value();
        else if (a == "--stats-json")
            o.statsJsonFile = value();
        else if (a == "--inject-fault")
            o.injectFault = value();
        else if (a == "--media-fault")
            o.injectFault = std::string("media-") + value();
        else if (a == "--media-region")
            o.mediaRegion = value();
        else if (a == "--scrub-interval")
            o.scrubInterval = numValue();
        else if (a == "--spares")
            o.spares = unsigned(numValue());
        else if (a == "--eadr-budget")
            o.eadrBudget = numValue();
        else if (a == "--damage-json")
            o.damageJsonFile = value();
        else if (a == "--verify-manifest")
            o.verifyManifest = true;
        else if (a == "--verify-perf-equiv")
            o.verifyPerfEquiv = true;
        else if (a == "--opt-knobs")
            o.optKnobs = value();
        else if (a == "--sample-interval")
            o.sampleInterval = numValue();
        else if (a == "--stats-timeline")
            o.timelineFile = value();
        else if (a == "--selfbench")
            o.selfbench = true;
        else if (a == "--list") {
            for (const auto &n : extendedWorkloadNames())
                std::printf("%s\n", n.c_str());
            std::exit(0);
        } else if (a == "--help" || a == "-h")
            usage(ExitOk);
        else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage(ExitUsage);
        }
    }
    return o;
}

/** Write the run metrics + full stat tree as one JSON document. */
void
writeStatsJson(std::ostream &os, const System &sys, const RunResult &res)
{
    os << "{\"run\":{"
       << "\"workload\":\"" << res.workload << "\""
       << ",\"mode\":\"" << securityModeName(res.mode) << "\""
       << ",\"transactions\":" << res.transactions
       << ",\"runCycles\":" << res.runCycles
       << ",\"instructions\":" << res.instructions
       << ",\"cyclesPerTx\":" << res.cyclesPerTx()
       << ",\"cpi\":" << res.cpi
       << ",\"retriesPerKwr\":" << res.retriesPerKwr
       << ",\"retryEvents\":" << res.retryEvents
       << ",\"writeRequests\":" << res.writeRequests
       << ",\"fenceStallCycles\":" << res.fenceStallCycles
       << ",\"wpqReadHits\":" << res.wpqReadHits
       << ",\"coalesces\":" << res.coalesces
       << ",\"crashed\":" << (res.crashed ? "true" : "false")
       << ",\"verified\":" << (res.verified ? "true" : "false")
       << "},\"stats\":";
    sys.dumpStatsJson(os);
    os << "}\n";
}

} // namespace

int
main(int argc, char **argv)
{
    const Options o = parse(argc, argv);

    if ((o.sampleInterval == 0) != o.timelineFile.empty()) {
        std::fprintf(stderr,
                     "--sample-interval and --stats-timeline must be "
                     "used together\n");
        usage(ExitUsage);
    }

    if (o.selfbench) {
        SelfbenchOptions sb;
        sb.workload = o.workload;
        sb.txns = o.txns;
        sb.numKeys = o.numKeys;
        sb.seed = o.seed;
        const auto mode = parseSecurityMode(o.mode);
        if (!mode) {
            std::fprintf(stderr, "unknown mode '%s'\n", o.mode.c_str());
            usage(ExitUsage);
        }
        sb.mode = *mode;
        const auto r = runSelfbench(sb);
        formatSelfbench(r, std::cout);
        return ExitOk;
    }

    if (o.verifyManifest) {
        bool ok = true;
        for (const auto &res :
             verify::verifyCrashManifestAllModes(o.seed)) {
            std::fputs(verify::formatManifestReport(res).c_str(),
                       stdout);
            ok = ok && res.ok();
        }
        std::printf("verify-manifest     : %s\n", ok ? "PASS" : "FAIL");
        return ok ? ExitOk : ExitViolation;
    }

    if (o.verifyPerfEquiv) {
        bool ok = true;
        for (const auto &res : verify::verifyPerfEquivAll(o.seed)) {
            std::printf("%s\n",
                        verify::formatPerfEquivReport(res).c_str());
            ok = ok && res.ok();
        }
        std::printf("verify-perf-equiv   : %s\n", ok ? "PASS" : "FAIL");
        return ok ? ExitOk : ExitViolation;
    }

    if (!o.traceFile.empty()) {
#if DOLOS_TRACING
        trace::Tracer::instance().enable();
#else
        std::fprintf(stderr,
                     "--trace requested but tracing was compiled out "
                     "(rebuild with -DDOLOS_TRACING=ON)\n");
        return 1;
#endif
    }

    std::optional<verify::FaultKind> injectKind;
    if (!o.injectFault.empty()) {
        injectKind = verify::parseFaultKind(o.injectFault);
        if (!injectKind) {
            std::fprintf(stderr, "unknown fault kind '%s'\n",
                         o.injectFault.c_str());
            usage(ExitUsage);
        }
    }

    NvmRegion mediaRegion = NvmRegion::Data;
    if (o.mediaRegion == "counter")
        mediaRegion = NvmRegion::Counter;
    else if (o.mediaRegion == "tree")
        mediaRegion = NvmRegion::Tree;
    else if (o.mediaRegion == "mac")
        mediaRegion = NvmRegion::Mac;
    else if (o.mediaRegion != "data") {
        std::fprintf(stderr, "unknown media region '%s'\n",
                     o.mediaRegion.c_str());
        usage(ExitUsage);
    }
    if (mediaRegion != NvmRegion::Data &&
        (!injectKind ||
         (*injectKind != verify::FaultKind::MediaTransient &&
          *injectKind != verify::FaultKind::MediaStuck))) {
        std::fprintf(stderr,
                     "--media-region needs --media-fault "
                     "transient|stuck\n");
        usage(ExitUsage);
    }

    auto cfg = SystemConfig::paperDefault();
    const auto mode = parseSecurityMode(o.mode);
    if (!mode) {
        std::fprintf(stderr, "unknown mode '%s'\n", o.mode.c_str());
        usage(ExitUsage);
    }
    cfg.mode = *mode;
    cfg.secure.treePolicy = o.tree == "lazy" ? TreeUpdatePolicy::LazyToc
                                             : TreeUpdatePolicy::EagerMerkle;
    cfg.secure.crashScheme = o.crashScheme == "osiris"
                                 ? CrashScheme::Osiris
                                 : CrashScheme::Anubis;
    cfg.wpq.adrBudgetEntries = o.wpqBudget;
    cfg.wpq.partialEntries = o.wpqBudget * 8 / 9 - 1;
    cfg.wpq.postEntries =
        o.wpqBudget > 6 ? o.wpqBudget * 8 / 9 - 4 : o.wpqBudget / 2;
    cfg.wpq.coalescing = !o.noCoalescing;
    if (!o.optKnobs.empty()) {
        const auto knobs = parseOptKnobs(o.optKnobs);
        if (!knobs) {
            std::fprintf(stderr, "unknown opt knob in '%s'\n",
                         o.optKnobs.c_str());
            usage(ExitUsage);
        }
        applyOptKnobs(cfg, *knobs);
    }
    cfg.secure.scrubIntervalWrites = o.scrubInterval;
    if (o.spares)
        cfg.nvm.spareBlocks = *o.spares;
    // A zero budget is rejected by validateConfig below (loudly, via
    // the invalid_argument catch), not clamped.
    if (o.eadrBudget)
        cfg.eadr.energyBudgetCycles = *o.eadrBudget;
    std::optional<System> sys_storage;
    try {
        sys_storage.emplace(cfg);
    } catch (const std::invalid_argument &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return ExitUsage;
    }
    System &sys = *sys_storage;

    WorkloadParams params;
    params.txSize = o.txSize;
    params.numKeys = o.numKeys;
    params.seed = o.seed;
    params.thinkTime = o.thinkTime;
    auto wl = makeWorkload(o.workload, params);

    std::optional<CrashPlan> crash;
    if (o.crashAt) {
        crash.emplace();
        crash->atOp = *o.crashAt;
    }

    std::optional<stats::StatSampler> sampler;
    if (o.sampleInterval) {
        sampler.emplace(o.sampleInterval);
        sys.attachStatSampler(&*sampler);
        sampler->begin(sys.core().now());
    }

    const auto res = runWorkload(sys, *wl, o.txns, crash);

    if (sampler) {
        sampler->finish(sys.core().now());
        sys.attachStatSampler(nullptr);
        std::ofstream out(o.timelineFile);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         o.timelineFile.c_str());
            return 1;
        }
        const bool csv =
            o.timelineFile.size() > 4 &&
            o.timelineFile.compare(o.timelineFile.size() - 4, 4,
                                   ".csv") == 0;
        if (csv)
            sampler->dumpCsv(out);
        else
            sampler->dumpJson(out);
        std::printf("stats timeline      : %s (%zu windows)\n",
                    o.timelineFile.c_str(), sampler->windowCount());
    }

    std::printf("workload            : %s\n", res.workload.c_str());
    std::printf("mode                : %s\n",
                securityModeName(res.mode));
    std::printf("transactions        : %" PRIu64 "%s\n",
                std::uint64_t(res.transactions),
                res.crashed ? " (power failure injected)" : "");
    std::printf("cycles/transaction  : %.0f\n", res.cyclesPerTx());
    std::printf("CPI                 : %.3f\n", res.cpi);
    std::printf("retry events / KWR  : %.2f\n", res.retriesPerKwr);
    std::printf("fence stall cycles  : %" PRIu64 "\n",
                std::uint64_t(res.fenceStallCycles));
    std::printf("WPQ read hits       : %" PRIu64 "\n",
                std::uint64_t(res.wpqReadHits));
    std::printf("coalesced writes    : %" PRIu64 "\n",
                std::uint64_t(res.coalesces));
    std::printf("verified            : %s\n",
                res.verified ? "yes" : "NO");
    if (!res.verified)
        std::printf("  diagnostic: %s\n", res.verifyDiagnostic.c_str());
    std::printf("attacks detected    : %" PRIu64 "\n",
                std::uint64_t(sys.engine().attacksDetected()));

    if (injectKind) {
        // Post-run fault phase, mirroring the fuzz episodes: power-
        // cycle to a cold machine, inject, then provoke the detector
        // with a demand access to the victim block.
        using verify::FaultKind;
        verify::FaultInjector inj(sys, o.seed);
        verify::InjectionRecord rec;
        if (*injectKind == FaultKind::CounterRollback) {
            sys.crash();
            rec = inj.inject(*injectKind);
            sys.recoverToCompletion();
        } else if (*injectKind == FaultKind::MediaWriteFail) {
            rec = inj.inject(*injectKind);
            if (rec.injected) {
                // Provoke: rewrite the victim so the failing write
                // path has to retry and eventually quarantine.
                const Block cur =
                    sys.nvmDevice().readFunctional(rec.victim);
                sys.core().store(rec.victim, cur.data(), blockSize);
                sys.core().clwb(rec.victim);
                sys.core().sfence();
                sys.core().compute(1'000'000);
                sys.controller().drainTo(sys.core().now());
            }
        } else if (mediaRegion != NvmRegion::Data) {
            // Metadata faults land BEFORE the crash: the worn frame
            // is then read by recovery itself, which must
            // disambiguate wear from tamper and repair or cascade.
            rec = *injectKind == FaultKind::MediaTransient
                      ? inj.injectMediaTransient(mediaRegion)
                      : inj.injectMediaStuck(mediaRegion);
            sys.crash();
            sys.recoverToCompletion();
            if (rec.injected) {
                Block buf;
                sys.core().load(rec.victim, buf.data(), blockSize);
            }
        } else {
            sys.crash();
            sys.recoverToCompletion();
            rec = inj.inject(*injectKind);
            if (rec.injected) {
                Block buf;
                sys.core().load(rec.victim, buf.data(), blockSize);
            }
        }
        std::printf("fault injected      : %s%s (%s)\n",
                    verify::faultKindName(*injectKind),
                    rec.injected ? "" : " [no target found]",
                    rec.detail.c_str());
        std::printf("post-fault alarms   : %" PRIu64 "\n",
                    std::uint64_t(sys.engine().attacksDetected()));
        std::printf("media: retries %llu, healed %llu, quarantined "
                    "%zu blocks\n",
                    (unsigned long long)sys.engine().mediaRetries(),
                    (unsigned long long)sys.engine().mediaHealed(),
                    sys.nvmDevice().quarantineCount());
        std::printf("repairs: ctr %llu, tree %llu, mac %llu, "
                    "cascaded %llu, reanchored %llu\n",
                    (unsigned long long)
                        sys.engine().counterBlocksRebuilt(),
                    (unsigned long long)sys.engine().treeNodesRepaired(),
                    (unsigned long long)sys.engine().macBlocksRebuilt(),
                    (unsigned long long)sys.engine().cascadedBlocks(),
                    (unsigned long long)sys.engine().rootReanchors());
    }

    if (o.scrubInterval) {
        std::printf("scrub: %llu passes, %llu repairs\n",
                    (unsigned long long)sys.engine().scrubPasses(),
                    (unsigned long long)sys.engine().scrubRepairs());
    }

    if (!o.damageJsonFile.empty()) {
        if (o.damageJsonFile == "-") {
            sys.dumpDamageJson(std::cout);
        } else {
            std::ofstream out(o.damageJsonFile);
            if (!out) {
                std::fprintf(stderr, "cannot write %s\n",
                             o.damageJsonFile.c_str());
                return 1;
            }
            sys.dumpDamageJson(out);
            std::printf("damage json         : %s\n",
                        o.damageJsonFile.c_str());
        }
    }

    if (o.stats) {
        std::printf("\n");
        sys.dumpStats(std::cout);
    }

    if (!o.statsJsonFile.empty()) {
        std::ofstream out(o.statsJsonFile);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         o.statsJsonFile.c_str());
            return 1;
        }
        writeStatsJson(out, sys, res);
        std::printf("stats json          : %s\n",
                    o.statsJsonFile.c_str());
    }

#if DOLOS_TRACING
    if (!o.traceFile.empty()) {
        auto &tracer = trace::Tracer::instance();
        tracer.disable();
        std::ofstream out(o.traceFile);
        if (!out) {
            std::fprintf(stderr, "cannot write %s\n",
                         o.traceFile.c_str());
            return 1;
        }
        tracer.dump(out);
        std::printf("trace               : %s (%zu events, %" PRIu64
                    " dropped)\n",
                    o.traceFile.c_str(), tracer.size(),
                    tracer.dropped());
    }
#endif
    return exitCodeFor(res.verified, sys.attackDetected(),
                       sys.unrecoverableMedia());
}
