/**
 * @file
 * dolos_torture — randomized compound-failure campaigns with
 * automatic trace minimization.
 *
 * Where dolos_fuzz injects ONE fault per episode, torture episodes
 * interleave many: stores, flushes, fences, repeated power failures,
 * power failures *during recovery*, and NVM media faults (transient
 * flips, stuck cells, failed writes), all driven from a seeded op
 * program against the GoldenModel committed-prefix oracle. Blocks a
 * schedule deliberately destroys (stuck cells / failed writes) are
 * excluded from the oracle sweep; everything else must hold.
 *
 * On failure the driver delta-debugs (ddmin) the op program down to a
 * minimal schedule that still fails and prints a one-line repro:
 *
 *   REPRO: dolos_torture --mode M --replay w:3:42,f:3,s,c
 *
 * Ops: w:SLOT:VAL store | f:SLOT clwb | s sfence | c crash+recover |
 *      r:K crash, then power dies K steps into recovery |
 *      t:SLOT:BIT transient read flip | k:SLOT:BIT stuck-at cell |
 *      x:SLOT:N next N writes to the block fail
 *
 * Modes of use:
 *   dolos_torture --campaign 20 --seed 7 [--mode dolos-full]
 *   dolos_torture --replay SPEC [--plant-bug drop-clwb:K]
 *   dolos_torture --expect-bug 20      (meta-test: plant a CLWB drop,
 *                                       require a ≤20-op minimized repro)
 *   dolos_torture --sweep --points every-op [--recovery-crash K]
 *
 * Exit codes follow sim/exit_codes.hh: 0 ok, 1 oracle violation,
 * 2 usage, 3 attack alarm, 4 unrecoverable media.
 */

#include <cstdio>
#include <cstring>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "sim/exit_codes.hh"
#include "sim/random.hh"
#include "verify/diff_oracle.hh"
#include "verify/fault_injector.hh"
#include "verify/sweep_driver.hh"
#include "workloads/runner.hh"

using namespace dolos;
using namespace dolos::verify;

namespace
{

constexpr unsigned numSlots = 24;
constexpr Addr slotBase = 0x20000; // inside the workload heap region

Addr
slotAddr(unsigned slot)
{
    return slotBase + Addr(slot % numSlots) * blockSize;
}

/** One schedule operation (see file header for the grammar). */
struct Op
{
    char kind = 'w';
    unsigned a = 0;      ///< slot / recovery step
    std::uint64_t b = 0; ///< value / bit / count
};

struct Outcome
{
    bool failed = false;
    bool attack = false;
    std::uint64_t violations = 0;
    std::size_t quarantined = 0;
    unsigned recoveryBoots = 0; ///< extra boots forced by r: ops
    std::string note;
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: dolos_torture [--campaign N] [--ops N] [--seed N]"
        " [--mode MODE]\n"
        "       dolos_torture --replay SPEC [--plant-bug drop-clwb:K]\n"
        "       dolos_torture --expect-bug MAXOPS [--seed N]\n"
        "       dolos_torture --sweep [--workload W] [--budget N]"
        " [--txns N]\n"
        "                     [--points every-op|wpq] "
        "[--recovery-crash K]\n"
        "  --mode MODE   ideal|baseline|post-unprotected|dolos-full|"
        "dolos-partial|dolos-post\n"
        "  SPEC          comma-separated ops: w:SLOT:VAL f:SLOT s c"
        " r:K t:SLOT:BIT k:SLOT:BIT x:SLOT:N\n");
    std::exit(code);
}

SystemConfig
tortureConfig(SecurityMode mode)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = mode;
    cfg.secure.functionalLeaves = 2048;
    cfg.secure.map.protectedBytes = Addr(2048) * pageBytes;
    cfg.hierarchy.l1 = {"l1", 1024, 2, 2};
    cfg.hierarchy.l2 = {"l2", 4096, 4, 20};
    cfg.hierarchy.llc = {"llc", 16384, 8, 32};
    return cfg;
}

std::string
formatOps(const std::vector<Op> &ops)
{
    std::string out;
    char buf[48];
    for (const Op &op : ops) {
        if (!out.empty())
            out += ",";
        switch (op.kind) {
          case 'w':
            std::snprintf(buf, sizeof(buf), "w:%u:%llu", op.a,
                          (unsigned long long)op.b);
            break;
          case 'f':
            std::snprintf(buf, sizeof(buf), "f:%u", op.a);
            break;
          case 's':
            std::snprintf(buf, sizeof(buf), "s");
            break;
          case 'c':
            std::snprintf(buf, sizeof(buf), "c");
            break;
          case 'r':
            std::snprintf(buf, sizeof(buf), "r:%u", op.a);
            break;
          default:
            std::snprintf(buf, sizeof(buf), "%c:%u:%llu", op.kind,
                          op.a, (unsigned long long)op.b);
            break;
        }
        out += buf;
    }
    return out;
}

std::optional<std::vector<Op>>
parseOps(const std::string &spec)
{
    std::vector<Op> ops;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string tok = spec.substr(pos, end - pos);
        pos = end + 1;
        if (tok.empty())
            continue;
        Op op;
        op.kind = tok[0];
        unsigned a = 0;
        unsigned long long b = 0;
        const int fields =
            std::sscanf(tok.c_str() + 1, ":%u:%llu", &a, &b);
        op.a = a;
        op.b = b;
        switch (op.kind) {
          case 's':
          case 'c':
            if (fields > 0)
                return std::nullopt;
            break;
          case 'f':
          case 'r':
            if (fields < 1)
                return std::nullopt;
            break;
          case 'w':
          case 't':
          case 'k':
          case 'x':
            if (fields < 2)
                return std::nullopt;
            break;
          default:
            return std::nullopt;
        }
        ops.push_back(op);
    }
    return ops;
}

/** Seeded op-program generator (weights favor stores + crashes). */
std::vector<Op>
genProgram(std::uint64_t seed, unsigned len)
{
    Random rng(seed ^ 0x7047'7042ULL);
    std::vector<Op> ops;
    ops.reserve(len);
    for (unsigned i = 0; i < len; ++i) {
        const std::uint64_t r = rng.below(100);
        Op op;
        if (r < 46) {
            op = {'w', unsigned(rng.below(numSlots)), rng.below(256)};
        } else if (r < 64) {
            op = {'f', unsigned(rng.below(numSlots)), 0};
        } else if (r < 76) {
            op = {'s', 0, 0};
        } else if (r < 84) {
            op = {'c', 0, 0};
        } else if (r < 90) {
            op = {'r', unsigned(rng.below(4)), 0};
        } else if (r < 94) {
            op = {'t', unsigned(rng.below(numSlots)),
                  rng.below(blockSize * 8)};
        } else if (r < 97) {
            op = {'k', unsigned(rng.below(numSlots)),
                  rng.below(blockSize * 8)};
        } else {
            op = {'x', unsigned(rng.below(numSlots)),
                  1 + rng.below(5)};
        }
        ops.push_back(op);
    }
    return ops;
}

/**
 * Execute one op program on a fresh machine and adjudicate it against
 * the golden model. Fully deterministic: the schedule *is* the
 * episode; no randomness is consumed at execution time.
 */
Outcome
runProgram(SecurityMode mode, const std::vector<Op> &ops,
           std::optional<std::uint64_t> plant_clwb_drop)
{
    Outcome out;
    System sys(tortureConfig(mode));
    GoldenModel golden;
    sys.core().setObserver(&golden);
    if (plant_clwb_drop)
        sys.core().armClwbDrop(*plant_clwb_drop);

    for (const Op &op : ops) {
        switch (op.kind) {
          case 'w': {
            Block data;
            for (unsigned i = 0; i < blockSize; ++i)
                data[i] = std::uint8_t(op.b ^ (i * 37) ^ op.a);
            sys.core().store(slotAddr(op.a), data.data(), blockSize);
            break;
          }
          case 'f':
            sys.core().clwb(slotAddr(op.a));
            break;
          case 's':
            sys.core().sfence();
            break;
          case 'c': {
            sys.crash();
            unsigned boots = 0;
            sys.recoverToCompletion(&boots);
            out.recoveryBoots += boots - 1;
            break;
          }
          case 'r': {
            // Compound failure: power dies again op.a steps into the
            // recovery; recoverToCompletion keeps power-cycling.
            sys.controller().armRecoveryCrash(op.a);
            sys.crash();
            unsigned boots = 0;
            sys.recoverToCompletion(&boots);
            out.recoveryBoots += boots - 1;
            break;
          }
          case 't':
            sys.nvmDevice().injectTransientFlip(slotAddr(op.a),
                                                unsigned(op.b));
            break;
          case 'k': {
            const Addr victim = slotAddr(op.a);
            const unsigned bit = unsigned(op.b) % (blockSize * 8);
            const Block stored = sys.nvmDevice().readFunctional(victim);
            const bool current =
                stored[bit / 8] & std::uint8_t(1u << (bit % 8));
            sys.nvmDevice().injectStuckBit(victim, bit, !current);
            break;
          }
          case 'x':
            sys.nvmDevice().injectWriteFail(slotAddr(op.a),
                                            unsigned(op.b));
            break;
          default:
            break;
        }
    }
    // Let background drains settle before the sweep.
    sys.core().compute(1'000'000);
    sys.controller().drainTo(sys.core().now());

    // Blocks this schedule deliberately destroyed are expected to
    // diverge; the oracle must hold on every other block.
    std::set<Addr> skip;
    for (const Addr block : golden.trackedBlocks())
        if (sys.nvmDevice().hasUnhealableFault(block))
            skip.insert(blockAlign(block));
    const auto report = checkAgainstGolden(sys, golden, skip);
    sys.core().setObserver(nullptr);

    out.attack = sys.attackDetected();
    out.violations = report.violations;
    out.quarantined = sys.nvmDevice().quarantineCount();
    out.failed = out.attack || report.violations > 0;
    if (out.failed)
        out.note = out.attack ? "attack alarm on a fault-free adversary"
                              : report.summary();
    return out;
}

/**
 * ddmin: shrink @p ops to a (1-minimal-ish) schedule that still
 * satisfies @p failing. Deterministic; bounded by @p max_runs
 * predicate evaluations.
 */
std::vector<Op>
minimizeOps(std::vector<Op> ops,
            const std::function<bool(const std::vector<Op> &)> &failing,
            unsigned max_runs = 600)
{
    unsigned runs = 0;
    std::size_t n = 2;
    while (ops.size() >= 2 && runs < max_runs) {
        const std::size_t chunk = (ops.size() + n - 1) / n;
        bool reduced = false;
        for (std::size_t i = 0; i < n && runs < max_runs; ++i) {
            // Try the complement of chunk i.
            std::vector<Op> cand;
            cand.reserve(ops.size());
            for (std::size_t j = 0; j < ops.size(); ++j)
                if (j / chunk != i)
                    cand.push_back(ops[j]);
            if (cand.size() == ops.size())
                continue;
            ++runs;
            if (failing(cand)) {
                ops = std::move(cand);
                n = std::max<std::size_t>(2, n - 1);
                reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (n >= ops.size())
                break;
            n = std::min(ops.size(), n * 2);
        }
    }
    return ops;
}

const char *
modeCliName(SecurityMode mode)
{
    switch (mode) {
      case SecurityMode::NonSecureIdeal:
        return "ideal";
      case SecurityMode::PreWpqSecure:
        return "baseline";
      case SecurityMode::PostWpqUnprotected:
        return "post-unprotected";
      case SecurityMode::DolosFullWpq:
        return "dolos-full";
      case SecurityMode::DolosPartialWpq:
        return "dolos-partial";
      case SecurityMode::DolosPostWpq:
        return "dolos-post";
    }
    return "?";
}

void
printRepro(SecurityMode mode, const std::vector<Op> &ops,
           std::optional<std::uint64_t> planted)
{
    std::printf("REPRO: dolos_torture --mode %s%s%s --replay %s\n",
                modeCliName(mode),
                planted ? " --plant-bug drop-clwb:" : "",
                planted ? std::to_string(*planted).c_str() : "",
                formatOps(ops).c_str());
}

/** Minimize a failing schedule and print the one-line repro. */
std::vector<Op>
minimizeAndReport(SecurityMode mode, const std::vector<Op> &ops,
                  std::optional<std::uint64_t> planted)
{
    const auto minimized = minimizeOps(ops, [&](const auto &cand) {
        return runProgram(mode, cand, planted).failed;
    });
    std::printf("minimized %zu ops -> %zu ops\n", ops.size(),
                minimized.size());
    printRepro(mode, minimized, planted);
    return minimized;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed = 1;
    unsigned campaign = 0;
    unsigned opsPerEpisode = 80;
    SecurityMode mode = SecurityMode::DolosPartialWpq;
    std::string replaySpec;
    std::optional<std::uint64_t> plantClwbDrop;
    std::optional<unsigned> expectBug;
    bool sweep = false;
    std::string sweepWorkload = "hashmap";
    std::string sweepPoints = "every-op";
    std::size_t sweepBudget = 4;
    std::uint64_t sweepTxns = 3;
    std::optional<unsigned> recoveryCrash;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             a.c_str());
                usage(ExitUsage);
            }
            return argv[++i];
        };
        if (a == "--seed") {
            seed = std::strtoull(value(), nullptr, 0);
        } else if (a == "--campaign") {
            campaign = unsigned(std::strtoull(value(), nullptr, 0));
        } else if (a == "--ops") {
            opsPerEpisode =
                unsigned(std::strtoull(value(), nullptr, 0));
        } else if (a == "--mode") {
            const auto m = parseSecurityMode(value());
            if (!m) {
                std::fprintf(stderr, "unknown mode '%s'\n", argv[i]);
                usage(ExitUsage);
            }
            mode = *m;
        } else if (a == "--replay") {
            replaySpec = value();
        } else if (a == "--plant-bug") {
            const std::string spec = value();
            unsigned long long k = 0;
            if (std::sscanf(spec.c_str(), "drop-clwb:%llu", &k) != 1) {
                std::fprintf(stderr, "unknown bug spec '%s'\n",
                             spec.c_str());
                usage(ExitUsage);
            }
            plantClwbDrop = k;
        } else if (a == "--expect-bug") {
            expectBug = unsigned(std::strtoull(value(), nullptr, 0));
        } else if (a == "--sweep") {
            sweep = true;
        } else if (a == "--workload") {
            sweepWorkload = value();
        } else if (a == "--points") {
            sweepPoints = value();
        } else if (a == "--budget") {
            sweepBudget = std::strtoull(value(), nullptr, 0);
        } else if (a == "--txns") {
            sweepTxns = std::strtoull(value(), nullptr, 0);
        } else if (a == "--recovery-crash") {
            recoveryCrash =
                unsigned(std::strtoull(value(), nullptr, 0));
        } else if (a == "--help" || a == "-h") {
            usage(ExitOk);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage(ExitUsage);
        }
    }

    if (sweep) {
        // Arbitrary-cycle crash sweep (optionally with a compound
        // mid-recovery crash at every point) — the sanitizer lane's
        // entry into the sweep machinery without needing gtest.
        SweepOptions opt;
        opt.mode = mode;
        opt.workload = sweepWorkload;
        opt.numTx = sweepTxns;
        opt.base = tortureConfig(mode);
        opt.params.txSize = 256;
        opt.params.numKeys = 48;
        opt.params.seed = seed;
        opt.params.thinkTime = 400;
        opt.params.readsPerTx = 1;
        opt.budget = sweepBudget;
        opt.sampleSeed = seed;
        opt.pointSet = sweepPoints == "wpq" ? CrashPoints::WpqBoundaries
                                            : CrashPoints::EveryOp;
        opt.recoveryCrashStep = recoveryCrash;
        const auto result = sweepCrashPoints(opt);
        std::printf("sweep [%s]: %zu candidate points, %zu run, "
                    "%zu failures\n",
                    describeSweep(opt).c_str(),
                    result.boundaries.size(), result.points.size(),
                    result.failures());
        if (!result.allPassed()) {
            std::printf("FAIL: %s\n", result.firstFailure().c_str());
            std::printf("REPRO: dolos_torture --sweep --mode %s "
                        "--workload %s --txns %llu --budget %zu "
                        "--seed %llu --points %s%s%u\n",
                        modeCliName(mode), sweepWorkload.c_str(),
                        (unsigned long long)sweepTxns, sweepBudget,
                        (unsigned long long)seed, sweepPoints.c_str(),
                        recoveryCrash ? " --recovery-crash " : "",
                        recoveryCrash ? *recoveryCrash : 0);
            return ExitViolation;
        }
        return ExitOk;
    }

    if (!replaySpec.empty()) {
        const auto ops = parseOps(replaySpec);
        if (!ops) {
            std::fprintf(stderr, "bad replay spec '%s'\n",
                         replaySpec.c_str());
            usage(ExitUsage);
        }
        const auto out = runProgram(mode, *ops, plantClwbDrop);
        std::printf("replay %zu ops on %s: %s (attack=%d "
                    "violations=%llu quarantined=%zu extra-boots=%u)"
                    "%s%s\n",
                    ops->size(), securityModeName(mode),
                    out.failed ? "FAIL" : "PASS", int(out.attack),
                    (unsigned long long)out.violations,
                    out.quarantined, out.recoveryBoots,
                    out.note.empty() ? "" : " — ", out.note.c_str());
        if (out.failed)
            minimizeAndReport(mode, *ops, plantClwbDrop);
        return exitCodeFor(!out.failed, out.attack,
                           out.quarantined != 0 && !out.failed);
    }

    if (expectBug) {
        // Meta-test: plant a known bug (the CLWB drop the oracle
        // exists to catch), require the campaign to find it, minimize
        // the schedule to --expect-bug ops or fewer, and prove the
        // minimized repro replays deterministically.
        const std::uint64_t planted_k = 0; // drop the first CLWB
        for (unsigned ep = 0; ep < 50; ++ep) {
            const auto ops =
                genProgram(seed + ep, opsPerEpisode);
            const auto out = runProgram(mode, ops, planted_k);
            if (!out.failed)
                continue;
            std::printf("planted bug tripped at episode %u "
                        "(seed %llu): %s\n",
                        ep, (unsigned long long)(seed + ep),
                        out.note.c_str());
            const auto minimized =
                minimizeAndReport(mode, ops, planted_k);
            if (minimized.size() > *expectBug) {
                std::printf("FAIL: minimized to %zu ops, wanted "
                            "<= %u\n",
                            minimized.size(), *expectBug);
                return ExitViolation;
            }
            const auto r1 = runProgram(mode, minimized, planted_k);
            const auto r2 = runProgram(mode, minimized, planted_k);
            if (!r1.failed || !r2.failed ||
                r1.violations != r2.violations) {
                std::printf("FAIL: minimized repro is not "
                            "deterministic\n");
                return ExitViolation;
            }
            std::printf("minimized repro replays deterministically "
                        "(%llu violations)\n",
                        (unsigned long long)r1.violations);
            return ExitOk;
        }
        std::printf("FAIL: planted bug never tripped in 50 episodes\n");
        return ExitViolation;
    }

    if (campaign == 0)
        campaign = 20;
    unsigned failed = 0;
    bool any_attack = false;
    std::printf("torture campaign: %u episodes x %u ops, mode %s, "
                "base seed %llu\n",
                campaign, opsPerEpisode, securityModeName(mode),
                (unsigned long long)seed);
    for (unsigned ep = 0; ep < campaign; ++ep) {
        const std::uint64_t ep_seed = seed + ep;
        const auto ops = genProgram(ep_seed, opsPerEpisode);
        const auto out = runProgram(mode, ops, std::nullopt);
        if (!out.failed)
            continue;
        ++failed;
        any_attack |= out.attack;
        std::printf("FAIL episode %u (seed %llu): %s\n", ep,
                    (unsigned long long)ep_seed, out.note.c_str());
        minimizeAndReport(mode, ops, std::nullopt);
    }
    std::printf("campaign done: %u/%u episodes failed\n", failed,
                campaign);
    if (failed)
        return any_attack ? ExitAttack : ExitViolation;
    return ExitOk;
}
