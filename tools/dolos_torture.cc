/**
 * @file
 * dolos_torture — randomized compound-failure campaigns with
 * automatic trace minimization.
 *
 * Where dolos_fuzz injects ONE fault per episode, torture episodes
 * interleave many: stores, flushes, fences, repeated power failures,
 * power failures *during recovery*, and NVM media faults (transient
 * flips, stuck cells, failed writes), all driven from a seeded op
 * program against the GoldenModel committed-prefix oracle. Blocks a
 * schedule deliberately destroys (stuck cells / failed writes) are
 * excluded from the oracle sweep; everything else must hold.
 *
 * On failure the driver delta-debugs (ddmin) the op program down to a
 * minimal schedule that still fails and prints a one-line repro:
 *
 *   REPRO: dolos_torture --mode M --replay w:3:42,f:3,s,c
 *
 * Ops: w:SLOT:VAL store | f:SLOT clwb | s sfence | c crash+recover |
 *      r:K crash, then power dies K steps into recovery |
 *      m:K arm a microstep crash K persist-path crash-point firings
 *          from now (power dies *inside* a drain's security work;
 *          see sim/crash_points.hh) |
 *      t:SLOT:BIT transient read flip | k:SLOT:BIT stuck-at cell |
 *      x:SLOT:N next N writes to the block fail |
 *      FC:SLOT:BIT stuck-at cell in the slot's *counter block* |
 *      FB:SLOT:BIT stuck-at cell in a tree node on the slot's path |
 *      FM:SLOT:BIT stuck-at cell in the slot's *MAC block*
 *
 * Modes of use:
 *   dolos_torture --campaign 20 --seed 7 [--mode dolos-full]
 *   dolos_torture --replay SPEC [--plant-bug drop-clwb:K]
 *   dolos_torture --expect-bug 20      (meta-test: plant a CLWB drop,
 *                                       then a counter-repair bug; each
 *                                       must minimize to ≤20 ops)
 *   dolos_torture --sweep --points every-op|wpq|microstep
 *                 [--recovery-crash K] [--meta-faults]
 *
 * Exit codes follow sim/exit_codes.hh: 0 ok, 1 oracle violation,
 * 2 usage, 3 attack alarm, 4 unrecoverable media.
 */

#include <atomic>
#include <cstdio>
#include <cstring>
#include <functional>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "secure/address_map.hh"
#include "secure/merkle_tree.hh"
#include "sim/crash_points.hh"
#include "sim/exit_codes.hh"
#include "sim/heartbeat.hh"
#include "sim/random.hh"
#include "sim/thread_annotations.hh"
#include "verify/diff_oracle.hh"
#include "verify/fault_injector.hh"
#include "verify/sweep_driver.hh"
#include "workloads/runner.hh"

using namespace dolos;
using namespace dolos::verify;

namespace
{

constexpr unsigned numSlots = 24;
constexpr Addr slotBase = 0x20000; // inside the workload heap region

Addr
slotAddr(unsigned slot)
{
    return slotBase + Addr(slot % numSlots) * blockSize;
}

/**
 * One schedule operation (see file header for the grammar). The
 * metadata-fault ops FC/FB/FM are stored with kind 'C'/'B'/'M' and
 * round-trip through format/parse with their two-char spelling.
 */
struct Op
{
    char kind = 'w';
    unsigned a = 0;      ///< slot / recovery step
    std::uint64_t b = 0; ///< value / bit / count
};

/** What --plant-bug plants (the --expect-bug meta-test's quarry). */
struct PlantSpec
{
    std::optional<std::uint64_t> clwbDrop; ///< drop the K-th CLWB
    bool badCounterRepair = false; ///< counter repair adopts garbage

    bool any() const { return clwbDrop.has_value() || badCounterRepair; }
};

struct Outcome
{
    bool failed = false;
    bool attack = false;
    std::uint64_t violations = 0;
    std::size_t quarantined = 0;
    unsigned recoveryBoots = 0; ///< extra boots forced by r: ops
    std::string note;
};

[[noreturn]] void
usage(int code)
{
    std::printf(
        "usage: dolos_torture [--campaign N] [--ops N] [--seed N]"
        " [--mode MODE]\n"
        "       dolos_torture --replay SPEC [--plant-bug drop-clwb:K]\n"
        "       dolos_torture --expect-bug MAXOPS [--seed N]\n"
        "       dolos_torture --sweep [--workload W] [--budget N]"
        " [--txns N]\n"
        "                     [--points every-op|wpq|microstep] "
        "[--recovery-crash K]\n"
        "  --mode MODE   ideal|baseline|post-unprotected|dolos-full|"
        "dolos-partial|dolos-post|eadr\n"
        "  SPEC          comma-separated ops: w:SLOT:VAL f:SLOT s c"
        " r:K m:K t:SLOT:BIT k:SLOT:BIT x:SLOT:N\n"
        "                FC:SLOT:BIT FB:SLOT:BIT FM:SLOT:BIT "
        "(stuck-at in counter/tree/MAC metadata)\n"
        "                m:K arms a power failure K persist-path "
        "crash-point firings ahead (dolos-*|eadr)\n"
        "  --points microstep sweeps the named persist-path crash "
        "points (dolos-*; eadr sweeps its\n"
        "                power-fail holdup flush instead)\n"
        "  --eadr-budget N\n"
        "                eADR holdup energy budget in cycles "
        "(nonzero; default covers a full flush)\n"
        "  --plant-bug   drop-clwb:K | bad-counter-repair\n"
        "  --meta-faults (sweep) stick a metadata bit at every crash "
        "point\n"
        "  --opt-knobs   persist-path levers for every episode: "
        "none|all|bmt-pipeline,drain-batch,tag-prefetch\n"
        "  --heartbeat N emit an NDJSON progress record to stderr "
        "every N cases\n"
        "                (campaign and sweep; default 5, 0 = off)\n"
        "  --jobs N      worker threads for campaign episodes and "
        "sweep crash points\n"
        "                (default 1; verdicts are bit-identical to "
        "--jobs 1)\n"
        "  --summary-json FILE\n"
        "                write the campaign-summary record to FILE\n");
    std::exit(code);
}

/**
 * Persist-path optimization levers (--opt-knobs), applied to every
 * configuration the harness builds: campaigns, replays, planted-bug
 * hunts, and sweeps all torture the optimized machine.
 */
DOLOS_THREAD_LOCAL_OK; // parsed in main() before any worker starts
OptKnobs gOptKnobs;

/**
 * eADR holdup energy budget override (--eadr-budget). Validated
 * nonzero at parse time; the config validator would reject 0 anyway,
 * but a CLI typo deserves a CLI-shaped error.
 */
DOLOS_THREAD_LOCAL_OK; // parsed in main() before any worker starts
std::optional<std::uint64_t> gEadrBudget;

SystemConfig
tortureConfig(SecurityMode mode)
{
    auto cfg = SystemConfig::paperDefault();
    cfg.mode = mode;
    if (gEadrBudget)
        cfg.eadr.energyBudgetCycles = *gEadrBudget;
    cfg.secure.functionalLeaves = 2048;
    cfg.secure.map.protectedBytes = Addr(2048) * pageBytes;
    cfg.hierarchy.l1 = {"l1", 1024, 2, 2};
    cfg.hierarchy.l2 = {"l2", 4096, 4, 20};
    cfg.hierarchy.llc = {"llc", 16384, 8, 32};
    applyOptKnobs(cfg, gOptKnobs);
    return cfg;
}

std::string
formatOps(const std::vector<Op> &ops)
{
    std::string out;
    char buf[48];
    for (const Op &op : ops) {
        if (!out.empty())
            out += ",";
        switch (op.kind) {
          case 'w':
            std::snprintf(buf, sizeof(buf), "w:%u:%llu", op.a,
                          (unsigned long long)op.b);
            break;
          case 'f':
            std::snprintf(buf, sizeof(buf), "f:%u", op.a);
            break;
          case 's':
            std::snprintf(buf, sizeof(buf), "s");
            break;
          case 'c':
            std::snprintf(buf, sizeof(buf), "c");
            break;
          case 'r':
            std::snprintf(buf, sizeof(buf), "r:%u", op.a);
            break;
          case 'm':
            std::snprintf(buf, sizeof(buf), "m:%u", op.a);
            break;
          case 'C':
          case 'B':
          case 'M':
            std::snprintf(buf, sizeof(buf), "F%c:%u:%llu", op.kind,
                          op.a, (unsigned long long)op.b);
            break;
          default:
            std::snprintf(buf, sizeof(buf), "%c:%u:%llu", op.kind,
                          op.a, (unsigned long long)op.b);
            break;
        }
        out += buf;
    }
    return out;
}

std::optional<std::vector<Op>>
parseOps(const std::string &spec)
{
    std::vector<Op> ops;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        const std::string tok = spec.substr(pos, end - pos);
        pos = end + 1;
        if (tok.empty())
            continue;
        Op op;
        op.kind = tok[0];
        std::size_t skip = 1;
        if (op.kind == 'F') {
            // Two-char metadata-fault ops: FC / FB / FM.
            if (tok.size() < 2)
                return std::nullopt;
            op.kind = tok[1];
            if (op.kind != 'C' && op.kind != 'B' && op.kind != 'M')
                return std::nullopt;
            skip = 2;
        }
        unsigned a = 0;
        unsigned long long b = 0;
        const int fields =
            std::sscanf(tok.c_str() + skip, ":%u:%llu", &a, &b);
        op.a = a;
        op.b = b;
        switch (op.kind) {
          case 's':
          case 'c':
            if (fields > 0)
                return std::nullopt;
            break;
          case 'f':
          case 'r':
          case 'm':
            if (fields < 1)
                return std::nullopt;
            break;
          case 'w':
          case 't':
          case 'k':
          case 'x':
          case 'C':
          case 'B':
          case 'M':
            if (fields < 2)
                return std::nullopt;
            break;
          default:
            return std::nullopt;
        }
        ops.push_back(op);
    }
    return ops;
}

/**
 * Seeded op-program generator (weights favor stores + crashes).
 * @p microstep_ops adds the m:K microstep-crash op to the mix —
 * Dolos modes (the ADR dump re-drains what the interrupted engine
 * left behind) and eADR (the holdup flush quarantines whatever it
 * could not cover); mid-engine crashes are unreconcilable elsewhere.
 */
std::vector<Op>
genProgram(std::uint64_t seed, unsigned len, bool microstep_ops)
{
    Random rng(seed ^ 0x7047'7042ULL);
    std::vector<Op> ops;
    ops.reserve(len);
    for (unsigned i = 0; i < len; ++i) {
        const std::uint64_t r = rng.below(microstep_ops ? 105 : 100);
        Op op;
        if (r >= 100) {
            // Arm a microstep crash a short (seeded) number of
            // crash-point firings ahead; the next drain-heavy op
            // trips it.
            op = {'m', unsigned(rng.below(48)), 0};
        } else if (r < 44) {
            op = {'w', unsigned(rng.below(numSlots)), rng.below(256)};
        } else if (r < 60) {
            op = {'f', unsigned(rng.below(numSlots)), 0};
        } else if (r < 71) {
            op = {'s', 0, 0};
        } else if (r < 79) {
            op = {'c', 0, 0};
        } else if (r < 85) {
            op = {'r', unsigned(rng.below(4)), 0};
        } else if (r < 89) {
            op = {'t', unsigned(rng.below(numSlots)),
                  rng.below(blockSize * 8)};
        } else if (r < 92) {
            op = {'k', unsigned(rng.below(numSlots)),
                  rng.below(blockSize * 8)};
        } else if (r < 95) {
            op = {'x', unsigned(rng.below(numSlots)),
                  1 + rng.below(5)};
        } else if (r < 97) {
            op = {'C', unsigned(rng.below(numSlots)),
                  rng.below(blockSize * 8)};
        } else if (r < 99) {
            op = {'B', unsigned(rng.below(numSlots)),
                  rng.below(blockSize * 8)};
        } else {
            op = {'M', unsigned(rng.below(numSlots)),
                  rng.below(blockSize * 8)};
        }
        ops.push_back(op);
    }
    return ops;
}

/**
 * Execute one op program on a fresh machine and adjudicate it against
 * the golden model. Fully deterministic: the schedule *is* the
 * episode; no randomness is consumed at execution time.
 */
Outcome
runProgram(SecurityMode mode, const std::vector<Op> &ops,
           const PlantSpec &plant)
{
    Outcome out;
    SystemConfig cfg = tortureConfig(mode);
    cfg.secure.plantCounterRepairBug = plant.badCounterRepair;
    System sys(cfg);
    GoldenModel golden;
    sys.core().setObserver(&golden);
    if (plant.clwbDrop)
        sys.core().armClwbDrop(*plant.clwbDrop);

    // Microstep arming (the m:K op): firing indices are counted by
    // the global registry, reset here so minimized replays see the
    // same counts a campaign episode did.
    auto &creg = crashpoint::Registry::instance();
    creg.reset();

    // Stick a cell at the complement of its stored value so the fault
    // is visible on the very next read of @p addr.
    const auto stickBit = [&sys](Addr addr, std::uint64_t raw_bit) {
        const unsigned bit = unsigned(raw_bit) % (blockSize * 8);
        const Block stored = sys.nvmDevice().readFunctional(addr);
        const bool current =
            stored[bit / 8] & std::uint8_t(1u << (bit % 8));
        sys.nvmDevice().injectStuckBit(addr, bit, !current);
    };

    for (const Op &op : ops) {
        try {
        switch (op.kind) {
          case 'w': {
            Block data;
            for (unsigned i = 0; i < blockSize; ++i)
                data[i] = std::uint8_t(op.b ^ (i * 37) ^ op.a);
            sys.core().store(slotAddr(op.a), data.data(), blockSize);
            break;
          }
          case 'f':
            sys.core().clwb(slotAddr(op.a));
            break;
          case 's':
            sys.core().sfence();
            break;
          case 'c': {
            sys.crash();
            unsigned boots = 0;
            sys.recoverToCompletion(&boots);
            out.recoveryBoots += boots - 1;
            break;
          }
          case 'r': {
            // Compound failure: power dies again op.a steps into the
            // recovery; recoverToCompletion keeps power-cycling.
            sys.controller().armRecoveryCrash(op.a);
            sys.crash();
            unsigned boots = 0;
            sys.recoverToCompletion(&boots);
            out.recoveryBoots += boots - 1;
            break;
          }
          case 'm':
            // Arm a microstep crash op.a crash-point firings from
            // now; whichever later op (or even a crash/recovery
            // re-drain) reaches that firing throws MicrostepCrash,
            // handled below like a power failure.
            creg.arm(creg.firings() + op.a);
            break;
          case 't':
            sys.nvmDevice().injectTransientFlip(slotAddr(op.a),
                                                unsigned(op.b));
            break;
          case 'k':
            stickBit(slotAddr(op.a), op.b);
            break;
          case 'x':
            sys.nvmDevice().injectWriteFail(slotAddr(op.a),
                                            unsigned(op.b));
            break;
          case 'C':
            stickBit(AddressMap::counterBlockAddr(slotAddr(op.a)),
                     op.b);
            break;
          case 'B':
            stickBit(AddressMap::treeNodeAddr(
                         1, AddressMap::pageOf(slotAddr(op.a)) /
                                MerkleTree::arity),
                     op.b);
            break;
          case 'M':
            stickBit(AddressMap::macBlockAddr(slotAddr(op.a)), op.b);
            break;
          default:
            break;
        }
        } catch (const crashpoint::MicrostepCrash &) {
            // Power died inside a drain's security work (armed by an
            // earlier m: op — possibly thrown from within another
            // op's crash flush or recovery re-drain). The registry
            // auto-disarmed; dump the machine as found and reboot.
            sys.crash(/*mid_operation=*/true);
            unsigned boots = 0;
            sys.recoverToCompletion(&boots);
            out.recoveryBoots += boots - 1;
        }
    }
    // An armed microstep crash that never fired must not trip during
    // the settle/verification drains below.
    creg.reset();
    // Let background drains settle before the sweep.
    sys.core().compute(1'000'000);
    sys.controller().drainTo(sys.core().now());

    // Blocks this schedule deliberately destroyed are expected to
    // diverge; the oracle must hold on every other block.
    std::set<Addr> skip;
    for (const Addr block : golden.trackedBlocks())
        if (sys.nvmDevice().hasUnhealableFault(block))
            skip.insert(blockAlign(block));
    const auto report = checkAgainstGolden(sys, golden, skip);
    sys.core().setObserver(nullptr);

    out.attack = sys.attackDetected();
    out.violations = report.violations;
    out.quarantined = sys.nvmDevice().quarantineCount();
    out.failed = out.attack || report.violations > 0;
    if (out.failed)
        out.note = out.attack ? "attack alarm on a fault-free adversary"
                              : report.summary();
    return out;
}

/**
 * ddmin: shrink @p ops to a (1-minimal-ish) schedule that still
 * satisfies @p failing. Deterministic; bounded by @p max_runs
 * predicate evaluations.
 */
std::vector<Op>
minimizeOps(std::vector<Op> ops,
            const std::function<bool(const std::vector<Op> &)> &failing,
            unsigned max_runs = 600)
{
    unsigned runs = 0;
    std::size_t n = 2;
    while (ops.size() >= 2 && runs < max_runs) {
        const std::size_t chunk = (ops.size() + n - 1) / n;
        bool reduced = false;
        for (std::size_t i = 0; i < n && runs < max_runs; ++i) {
            // Try the complement of chunk i.
            std::vector<Op> cand;
            cand.reserve(ops.size());
            for (std::size_t j = 0; j < ops.size(); ++j)
                if (j / chunk != i)
                    cand.push_back(ops[j]);
            if (cand.size() == ops.size())
                continue;
            ++runs;
            if (failing(cand)) {
                ops = std::move(cand);
                n = std::max<std::size_t>(2, n - 1);
                reduced = true;
                break;
            }
        }
        if (!reduced) {
            if (n >= ops.size())
                break;
            n = std::min(ops.size(), n * 2);
        }
    }
    return ops;
}

const char *
modeCliName(SecurityMode mode)
{
    switch (mode) {
      case SecurityMode::NonSecureIdeal:
        return "ideal";
      case SecurityMode::PreWpqSecure:
        return "baseline";
      case SecurityMode::PostWpqUnprotected:
        return "post-unprotected";
      case SecurityMode::DolosFullWpq:
        return "dolos-full";
      case SecurityMode::DolosPartialWpq:
        return "dolos-partial";
      case SecurityMode::DolosPostWpq:
        return "dolos-post";
      case SecurityMode::EadrSecure:
        return "eadr";
    }
    return "?";
}

void
printRepro(SecurityMode mode, const std::vector<Op> &ops,
           const PlantSpec &plant)
{
    std::string bug;
    if (plant.clwbDrop)
        bug = " --plant-bug drop-clwb:" + std::to_string(*plant.clwbDrop);
    else if (plant.badCounterRepair)
        bug = " --plant-bug bad-counter-repair";
    std::string budget;
    if (gEadrBudget)
        budget = " --eadr-budget " + std::to_string(*gEadrBudget);
    // Always name the lever set: a repro line recorded before a
    // default flip must rebuild the same machine after it.
    std::printf("REPRO: dolos_torture --mode %s%s%s --opt-knobs %s "
                "--replay %s\n",
                modeCliName(mode), bug.c_str(), budget.c_str(),
                formatOptKnobs(gOptKnobs).c_str(),
                formatOps(ops).c_str());
}

/** Minimize a failing schedule and print the one-line repro. */
std::vector<Op>
minimizeAndReport(SecurityMode mode, const std::vector<Op> &ops,
                  const PlantSpec &plant)
{
    const auto minimized = minimizeOps(ops, [&](const auto &cand) {
        return runProgram(mode, cand, plant).failed;
    });
    std::printf("minimized %zu ops -> %zu ops\n", ops.size(),
                minimized.size());
    printRepro(mode, minimized, plant);
    return minimized;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t seed = 1;
    unsigned campaign = 0;
    unsigned opsPerEpisode = 80;
    SecurityMode mode = SecurityMode::DolosPartialWpq;
    std::string replaySpec;
    PlantSpec plant;
    std::optional<unsigned> expectBug;
    bool sweep = false;
    bool metaFaults = false;
    std::uint64_t heartbeat = 5;
    unsigned jobs = 1;
    std::string summaryJson;
    std::string sweepWorkload = "hashmap";
    std::string sweepPoints = "every-op";
    std::size_t sweepBudget = 4;
    std::uint64_t sweepTxns = 3;
    std::optional<unsigned> recoveryCrash;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto value = [&]() -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "missing value for %s\n",
                             a.c_str());
                usage(ExitUsage);
            }
            return argv[++i];
        };
        if (a == "--seed") {
            seed = std::strtoull(value(), nullptr, 0);
        } else if (a == "--campaign") {
            campaign = unsigned(std::strtoull(value(), nullptr, 0));
        } else if (a == "--ops") {
            opsPerEpisode =
                unsigned(std::strtoull(value(), nullptr, 0));
        } else if (a == "--mode") {
            const auto m = parseSecurityMode(value());
            if (!m) {
                std::fprintf(stderr, "unknown mode '%s'\n", argv[i]);
                usage(ExitUsage);
            }
            mode = *m;
        } else if (a == "--replay") {
            replaySpec = value();
        } else if (a == "--plant-bug") {
            const std::string spec = value();
            unsigned long long k = 0;
            if (spec == "bad-counter-repair") {
                plant.badCounterRepair = true;
            } else if (std::sscanf(spec.c_str(), "drop-clwb:%llu",
                                   &k) == 1) {
                plant.clwbDrop = k;
            } else {
                std::fprintf(stderr, "unknown bug spec '%s'\n",
                             spec.c_str());
                usage(ExitUsage);
            }
        } else if (a == "--expect-bug") {
            expectBug = unsigned(std::strtoull(value(), nullptr, 0));
        } else if (a == "--sweep") {
            sweep = true;
        } else if (a == "--workload") {
            sweepWorkload = value();
        } else if (a == "--points") {
            sweepPoints = value();
        } else if (a == "--budget") {
            sweepBudget = std::strtoull(value(), nullptr, 0);
        } else if (a == "--txns") {
            sweepTxns = std::strtoull(value(), nullptr, 0);
        } else if (a == "--recovery-crash") {
            recoveryCrash =
                unsigned(std::strtoull(value(), nullptr, 0));
        } else if (a == "--eadr-budget") {
            const std::uint64_t v =
                std::strtoull(value(), nullptr, 0);
            if (v == 0) {
                std::fprintf(stderr,
                             "--eadr-budget must be nonzero (a zero "
                             "budget could never admit a line)\n");
                usage(ExitUsage);
            }
            gEadrBudget = v;
        } else if (a == "--meta-faults") {
            metaFaults = true;
        } else if (a == "--heartbeat") {
            heartbeat = std::strtoull(value(), nullptr, 0);
        } else if (a == "--jobs") {
            jobs = unsigned(std::strtoull(value(), nullptr, 0));
            if (jobs == 0) {
                std::fprintf(stderr, "--jobs must be >= 1\n");
                usage(ExitUsage);
            }
        } else if (a == "--summary-json") {
            summaryJson = value();
        } else if (a == "--opt-knobs") {
            const std::string spec = value();
            const auto knobs = parseOptKnobs(spec);
            if (!knobs) {
                std::fprintf(stderr, "bad --opt-knobs spec '%s'\n",
                             spec.c_str());
                usage(ExitUsage);
            }
            gOptKnobs = *knobs;
        } else if (a == "--help" || a == "-h") {
            usage(ExitOk);
        } else {
            std::fprintf(stderr, "unknown option '%s'\n", a.c_str());
            usage(ExitUsage);
        }
    }

    if (sweep) {
        // Arbitrary-cycle crash sweep (optionally with a compound
        // mid-recovery crash at every point) — the sanitizer lane's
        // entry into the sweep machinery without needing gtest.
        SweepOptions opt;
        opt.mode = mode;
        opt.workload = sweepWorkload;
        opt.numTx = sweepTxns;
        opt.base = tortureConfig(mode);
        opt.params.txSize = 256;
        opt.params.numKeys = 48;
        opt.params.seed = seed;
        opt.params.thinkTime = 400;
        opt.params.readsPerTx = 1;
        opt.budget = sweepBudget;
        opt.sampleSeed = seed;
        if (sweepPoints == "every-op") {
            opt.pointSet = CrashPoints::EveryOp;
        } else if (sweepPoints == "wpq") {
            opt.pointSet = CrashPoints::WpqBoundaries;
        } else if (sweepPoints == "microstep") {
            if (!isDolosMode(mode) &&
                mode != SecurityMode::EadrSecure) {
                std::fprintf(stderr,
                             "--points microstep needs a mode with an "
                             "interruptible persist surface: "
                             "dolos-full|dolos-partial|dolos-post "
                             "(the re-drainable ADR dump) or eadr "
                             "(the holdup flush); got %s\n",
                             modeCliName(mode));
                usage(ExitUsage);
            }
            opt.pointSet = CrashPoints::Microstep;
        } else {
            std::fprintf(stderr, "unknown --points '%s'\n",
                         sweepPoints.c_str());
            usage(ExitUsage);
        }
        opt.recoveryCrashStep = recoveryCrash;
        opt.metadataFaults = metaFaults;
        opt.heartbeatEvery = heartbeat;
        opt.jobs = jobs;
        const auto result = sweepCrashPoints(opt);
        std::printf("sweep [%s]: %zu candidate points, %zu run, "
                    "%zu failures\n",
                    describeSweep(opt).c_str(),
                    result.boundaries.size(), result.points.size(),
                    result.failures());
        if (!summaryJson.empty()) {
            CampaignMonitor monitor("sweep", result.points.size(), 0,
                                    nullptr);
            monitor.recordBatch(result.points.size(),
                                result.failures());
            if (!monitor.writeSummary(summaryJson)) {
                std::fprintf(stderr, "cannot write %s\n",
                             summaryJson.c_str());
                return ExitUsage;
            }
        }
        if (!result.allPassed()) {
            std::printf("FAIL: %s\n", result.firstFailure().c_str());
            const std::string budget_arg =
                gEadrBudget ? " --eadr-budget " +
                                  std::to_string(*gEadrBudget)
                            : std::string();
            // --jobs stays in the repro line for fidelity, but the
            // verdicts are jobs-invariant: a --jobs 1 re-run must
            // reproduce any parallel-run finding.
            std::printf("REPRO: dolos_torture --sweep --mode %s "
                        "--workload %s --txns %llu --budget %zu "
                        "--seed %llu --points %s%s%s%s%s "
                        "--opt-knobs %s --jobs %u\n",
                        modeCliName(mode), sweepWorkload.c_str(),
                        (unsigned long long)sweepTxns, sweepBudget,
                        (unsigned long long)seed, sweepPoints.c_str(),
                        recoveryCrash ? " --recovery-crash " : "",
                        recoveryCrash
                            ? std::to_string(*recoveryCrash).c_str()
                            : "",
                        metaFaults ? " --meta-faults" : "",
                        budget_arg.c_str(),
                        formatOptKnobs(gOptKnobs).c_str(), jobs);
            return ExitViolation;
        }
        return ExitOk;
    }

    if (!replaySpec.empty()) {
        const auto ops = parseOps(replaySpec);
        if (!ops) {
            std::fprintf(stderr, "bad replay spec '%s'\n",
                         replaySpec.c_str());
            usage(ExitUsage);
        }
        const auto out = runProgram(mode, *ops, plant);
        std::printf("replay %zu ops on %s: %s (attack=%d "
                    "violations=%llu quarantined=%zu extra-boots=%u)"
                    "%s%s\n",
                    ops->size(), securityModeName(mode),
                    out.failed ? "FAIL" : "PASS", int(out.attack),
                    (unsigned long long)out.violations,
                    out.quarantined, out.recoveryBoots,
                    out.note.empty() ? "" : " — ", out.note.c_str());
        if (out.failed)
            minimizeAndReport(mode, *ops, plant);
        return exitCodeFor(!out.failed, out.attack,
                           out.quarantined != 0 && !out.failed);
    }

    if (expectBug) {
        // Meta-test: plant a known bug, require the campaign to find
        // it, minimize the schedule to --expect-bug ops or fewer, and
        // prove the minimized repro replays deterministically. Two
        // quarries: the CLWB drop the committed-prefix oracle exists
        // to catch, then a counter-repair bug (repair adopts the raw
        // faulted frame instead of reconstructing) that only the
        // metadata-fault ops can expose.
        const auto hunt = [&](const PlantSpec &spec,
                              const char *label) -> bool {
            for (unsigned ep = 0; ep < 50; ++ep) {
                const auto ops = genProgram(
                    seed + ep, opsPerEpisode,
                    isDolosMode(mode) ||
                        mode == SecurityMode::EadrSecure);
                const auto out = runProgram(mode, ops, spec);
                if (!out.failed)
                    continue;
                std::printf("planted %s tripped at episode %u "
                            "(seed %llu): %s\n",
                            label, ep, (unsigned long long)(seed + ep),
                            out.note.c_str());
                const auto minimized =
                    minimizeAndReport(mode, ops, spec);
                if (minimized.size() > *expectBug) {
                    std::printf("FAIL: minimized to %zu ops, wanted "
                                "<= %u\n",
                                minimized.size(), *expectBug);
                    return false;
                }
                const auto r1 = runProgram(mode, minimized, spec);
                const auto r2 = runProgram(mode, minimized, spec);
                if (!r1.failed || !r2.failed ||
                    r1.violations != r2.violations) {
                    std::printf("FAIL: minimized repro is not "
                                "deterministic\n");
                    return false;
                }
                std::printf("minimized repro replays "
                            "deterministically (%llu violations)\n",
                            (unsigned long long)r1.violations);
                return true;
            }
            std::printf("FAIL: planted %s never tripped in "
                        "50 episodes\n",
                        label);
            return false;
        };
        PlantSpec clwb;
        clwb.clwbDrop = 0; // drop the first CLWB
        PlantSpec badRepair;
        badRepair.badCounterRepair = true;
        if (!hunt(clwb, "clwb-drop"))
            return ExitViolation;
        if (!hunt(badRepair, "bad-counter-repair"))
            return ExitViolation;
        return ExitOk;
    }

    if (campaign == 0)
        campaign = 20;
    unsigned failed = 0;
    bool any_attack = false;
    std::printf("torture campaign: %u episodes x %u ops, mode %s, "
                "base seed %llu, opt-knobs %s, jobs %u\n",
                campaign, opsPerEpisode, securityModeName(mode),
                (unsigned long long)seed,
                formatOptKnobs(gOptKnobs).c_str(), jobs);
    CampaignMonitor monitor("torture", campaign, heartbeat);
    if (jobs <= 1) {
        for (unsigned ep = 0; ep < campaign; ++ep) {
            const std::uint64_t ep_seed = seed + ep;
            const auto ops = genProgram(
                ep_seed, opsPerEpisode,
                isDolosMode(mode) || mode == SecurityMode::EadrSecure);
            const auto out = runProgram(mode, ops, PlantSpec{});
            monitor.caseDone(ep_seed, out.failed);
            if (!out.failed)
                continue;
            ++failed;
            any_attack |= out.attack;
            std::printf("FAIL episode %u (seed %llu): %s\n", ep,
                        (unsigned long long)ep_seed, out.note.c_str());
            minimizeAndReport(mode, ops, PlantSpec{});
        }
    } else {
        // Two-phase parallel campaign: workers run episodes into
        // per-episode slots (each episode is seeded and
        // self-contained, so the outcome set is identical to the
        // serial run), then failures are reported and minimized
        // serially in episode order so the log and the minimizer's
        // stdout stay deterministic.
        std::vector<Outcome> outcomes(campaign);
        std::atomic<unsigned> next{0};
        std::vector<std::thread> workers;
        workers.reserve(jobs);
        for (unsigned w = 0; w < std::min(jobs, campaign); ++w)
            workers.emplace_back([&] {
                for (;;) {
                    const unsigned ep =
                        next.fetch_add(1, std::memory_order_relaxed);
                    if (ep >= campaign)
                        return;
                    const std::uint64_t ep_seed = seed + ep;
                    const auto ops = genProgram(
                        ep_seed, opsPerEpisode,
                        isDolosMode(mode) ||
                            mode == SecurityMode::EadrSecure);
                    outcomes[ep] = runProgram(mode, ops, PlantSpec{});
                    monitor.caseDone(ep_seed, outcomes[ep].failed);
                }
            });
        for (auto &t : workers)
            t.join();
        for (unsigned ep = 0; ep < campaign; ++ep) {
            const auto &out = outcomes[ep];
            if (!out.failed)
                continue;
            ++failed;
            any_attack |= out.attack;
            const std::uint64_t ep_seed = seed + ep;
            std::printf("FAIL episode %u (seed %llu): %s\n", ep,
                        (unsigned long long)ep_seed, out.note.c_str());
            const auto ops = genProgram(
                ep_seed, opsPerEpisode,
                isDolosMode(mode) || mode == SecurityMode::EadrSecure);
            minimizeAndReport(mode, ops, PlantSpec{});
        }
    }
    monitor.finish();
    if (!summaryJson.empty() && !monitor.writeSummary(summaryJson)) {
        std::fprintf(stderr, "cannot write %s\n", summaryJson.c_str());
        return ExitUsage;
    }
    std::printf("campaign done: %u/%u episodes failed\n", failed,
                campaign);
    if (failed)
        return any_attack ? ExitAttack : ExitViolation;
    return ExitOk;
}
