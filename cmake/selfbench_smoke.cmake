# Self-profiler smoke test (ctest tier2).
#
# Runs `dolos-sim --selfbench` with a tiny transaction count and
# checks it reports a throughput figure; when the self-profiler is
# compiled in (the default), the attribution table must be present
# too. This lane validates the measurement machinery, not the speed —
# the recorded-baseline selfbench gate owns the numbers.
#
# Invoked as:
#   cmake -DSIM=<dolos-sim> -DWORKDIR=<dir> -P selfbench_smoke.cmake

foreach(var SIM WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "selfbench_smoke: ${var} not set")
    endif()
endforeach()

file(MAKE_DIRECTORY "${WORKDIR}")

execute_process(
    COMMAND "${SIM}" --selfbench --workload hashmap --txns 50
            --keys 64
    RESULT_VARIABLE sim_rc
    OUTPUT_VARIABLE sim_out
    ERROR_VARIABLE sim_err)
if(NOT sim_rc EQUAL 0)
    message(FATAL_ERROR
        "selfbench_smoke: --selfbench failed (rc=${sim_rc})\n"
        "${sim_out}\n${sim_err}")
endif()

string(FIND "${sim_out}" "simulated instructions/sec" has_rate)
if(has_rate EQUAL -1)
    message(FATAL_ERROR
        "selfbench_smoke: no throughput figure in output:\n"
        "${sim_out}")
endif()

# Either the attribution table (profiler compiled in) or the explicit
# compiled-out notice must be present — silence means the report path
# is broken.
string(FIND "${sim_out}" "host-time attribution" has_attr)
string(FIND "${sim_out}" "self-profiler compiled out" has_notice)
if(has_attr EQUAL -1 AND has_notice EQUAL -1)
    message(FATAL_ERROR
        "selfbench_smoke: neither attribution table nor compiled-out "
        "notice in output:\n${sim_out}")
endif()

message(STATUS "selfbench_smoke: OK")
