# Timeline telemetry smoke test (ctest tier2).
#
# Runs one short simulation with --sample-interval/--stats-timeline
# in both JSON and CSV form, validates the JSON artifact with
# dolos_report --check, and renders it with dolos_report --timeline
# in both single-file (sparklines) and two-file (delta table) form.
# The two-file run diffs the artifact against itself, so every shared
# series must come back with a zero delta.
#
# Invoked as:
#   cmake -DSIM=<dolos-sim> -DREPORT=<dolos_report> -DWORKDIR=<dir>
#         -P timeline_smoke.cmake

foreach(var SIM REPORT WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "timeline_smoke: ${var} not set")
    endif()
endforeach()

file(MAKE_DIRECTORY "${WORKDIR}")
set(json_file "${WORKDIR}/timeline.json")
set(csv_file "${WORKDIR}/timeline.csv")

foreach(artifact "${json_file}" "${csv_file}")
    execute_process(
        COMMAND "${SIM}" --workload hashmap --txns 50 --keys 64
                --sample-interval 50000 --stats-timeline "${artifact}"
        RESULT_VARIABLE sim_rc
        OUTPUT_VARIABLE sim_out
        ERROR_VARIABLE sim_err)
    if(NOT sim_rc EQUAL 0)
        message(FATAL_ERROR
            "timeline_smoke: simulation failed (rc=${sim_rc})\n"
            "${sim_out}\n${sim_err}")
    endif()
    if(NOT EXISTS "${artifact}")
        message(FATAL_ERROR
            "timeline_smoke: ${artifact} was not written")
    endif()
endforeach()

# The CSV must have a header plus at least one window row.
file(STRINGS "${csv_file}" csv_lines)
list(LENGTH csv_lines csv_rows)
if(csv_rows LESS 2)
    message(FATAL_ERROR
        "timeline_smoke: CSV has ${csv_rows} line(s), expected a "
        "header plus window rows")
endif()

execute_process(
    COMMAND "${REPORT}" --check "${json_file}"
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "timeline_smoke: invalid JSON artifact (rc=${check_rc})\n"
        "${check_out}\n${check_err}")
endif()

execute_process(
    COMMAND "${REPORT}" --timeline "${json_file}"
    RESULT_VARIABLE spark_rc
    OUTPUT_VARIABLE spark_out
    ERROR_VARIABLE spark_err)
if(NOT spark_rc EQUAL 0)
    message(FATAL_ERROR
        "timeline_smoke: --timeline rendering failed "
        "(rc=${spark_rc})\n${spark_out}\n${spark_err}")
endif()
string(FIND "${spark_out}" "drainsPerKcycle" has_derived)
if(has_derived EQUAL -1)
    message(FATAL_ERROR
        "timeline_smoke: --timeline output lacks the derived "
        "drainsPerKcycle series:\n${spark_out}")
endif()

# Self-compare: shared series, all deltas zero.
execute_process(
    COMMAND "${REPORT}" --timeline "${json_file}" "${json_file}"
    RESULT_VARIABLE cmp_rc
    OUTPUT_VARIABLE cmp_out
    ERROR_VARIABLE cmp_err)
if(NOT cmp_rc EQUAL 0)
    message(FATAL_ERROR
        "timeline_smoke: two-file --timeline failed (rc=${cmp_rc})\n"
        "${cmp_out}\n${cmp_err}")
endif()

message(STATUS "timeline_smoke: OK")
