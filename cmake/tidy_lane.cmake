# clang-tidy lane (ctest tier2, optional tooling).
#
# Runs clang-tidy with the repository .clang-tidy profile over the
# core simulator sources, using the compile_commands.json the main
# build exports (CMAKE_EXPORT_COMPILE_COMMANDS is always on). If
# clang-tidy is not installed, the lane *skips* rather than failing
# (ctest matches "clang-tidy not found" via SKIP_REGULAR_EXPRESSION):
# the container image is not required to carry LLVM.
#
# Invoked as:
#   cmake -DSOURCE_DIR=<repo root> -DBUILD_DIR=<configured build>
#         -P tidy_lane.cmake

foreach(var SOURCE_DIR BUILD_DIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "tidy_lane: ${var} not set")
    endif()
endforeach()

find_program(CLANG_TIDY NAMES clang-tidy clang-tidy-18 clang-tidy-17
                               clang-tidy-16 clang-tidy-15)
if(NOT CLANG_TIDY)
    # ctest marks the test skipped when this line appears in the
    # output (SKIP_REGULAR_EXPRESSION in tests/CMakeLists.txt).
    message(STATUS "tidy_lane: clang-tidy not found, skipping")
    return()
endif()

if(NOT EXISTS "${BUILD_DIR}/compile_commands.json")
    message(FATAL_ERROR
        "tidy_lane: ${BUILD_DIR}/compile_commands.json missing "
        "(CMAKE_EXPORT_COMPILE_COMMANDS should be on)")
endif()

file(GLOB_RECURSE sources
    "${SOURCE_DIR}/src/*.cc")

execute_process(
    COMMAND "${CLANG_TIDY}" -p "${BUILD_DIR}" --quiet ${sources}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "tidy_lane: clang-tidy reported issues (rc=${rc})\n"
        "${out}\n${err}")
endif()
message(STATUS "tidy_lane: OK")
