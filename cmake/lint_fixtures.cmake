# ctest `lint_fixtures`: prove dolos_lint flags every planted
# violation in tests/lint_fixtures/ (exit code 1 + the expected
# diagnostic) and still runs clean over the real tree (exit code 0).
#
# Inputs: -DLINT=<dolos_lint binary> -DSOURCE_DIR=<repo root>

if(NOT LINT OR NOT SOURCE_DIR)
    message(FATAL_ERROR "need -DLINT=... -DSOURCE_DIR=...")
endif()
set(FIXTURES ${SOURCE_DIR}/tests/lint_fixtures)

# expect_flag(<fixture> <violations> <expected substring>)
function(expect_flag file count expected)
    execute_process(COMMAND ${LINT} ${FIXTURES}/${file}
        RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
    if(NOT rc EQUAL 1)
        message(FATAL_ERROR
            "${file}: expected exit 1, got ${rc}\n${out}${err}")
    endif()
    string(FIND "${out}" "${expected}" pos)
    if(pos EQUAL -1)
        message(FATAL_ERROR
            "${file}: missing expected diagnostic\n"
            "  wanted: ${expected}\n  got:\n${out}")
    endif()
    string(FIND "${out}" "${count} violation(s)" pos)
    if(pos EQUAL -1)
        message(FATAL_ERROR
            "${file}: expected exactly ${count} violation(s)\n${out}")
    endif()
    message(STATUS "${file}: flagged as planted")
endfunction()

expect_flag(untagged_member.hh 1
    "member 'untagged' of state class 'FixtureUntagged' lacks a")
expect_flag(duplicate_tag.hh 1
    "field 'field' annotated twice")
expect_flag(unknown_field_tag.hh 1
    "tag names unknown member 'ghost'")
expect_flag(missing_marker.hh 1
    "crash-relevant class 'NvmDevice' has no DOLOS_STATE_CLASS marker")
expect_flag(kind_mismatch.cc 1
    "registers 'cursor' as persistent but the header tags it volatile")
expect_flag(eadr_kind_mismatch.cc 1
    "registers 'lines' as persistent but the header tags it eadr-flushed")
expect_flag(missing_manifest_field.cc 1
    "does not register tagged field 'left_out'")
expect_flag(missing_manifest.cc 1
    "state class 'FixtureNoManifest' has no stateManifest() definition")
expect_flag(manifest_dup_field.cc 1
    "registers 'field' twice")
expect_flag(dup_stat_name.cc 1
    "stat 'hits' registered twice on 'stats_'")
expect_flag(trace_arity.cc 1
    "DOLOS_TRACE expects 5 arguments")
# 2 planted: an unknown component and a wrong arity; the adjacent
# correct site must not be flagged.
expect_flag(prof_scope_bad.cc 2
    "'AesEngine' is not a prof::Comp component")
# 3 planted mismatches; the adjacent correct call must not be flagged,
# and the suppressed malloc in raw_alloc.cc must not be either.
expect_flag(format_mismatch.cc 3
    "consumes 2 argument(s) but 1 provided")
expect_flag(raw_alloc.cc 1
    "raw 'new'")
# 2 planted (namespace global + static local); the annotated,
# const/constexpr, and thread_local neighbors must not be flagged.
expect_flag(thread_shared_global.cc 2
    "namespace-scope mutable variable 'unannotated_counter' lacks a")
expect_flag(crash_orphan_step.cc 1
    "registered step 'OrphanStep' has no DOLOS_CRASH_POINT hook site")
expect_flag(crash_unknown_step.cc 1
    "DOLOS_CRASH_POINT names unregistered step 'GhostStep'")
expect_flag(crash_hook_distance.cc 1
    "mutation 'writeCiphertext' in drain/flush function 'drainEntry'")
# 1 planted call; the same-named member call and the suppressed call
# must not be flagged.
expect_flag(determinism_rand.cc 1
    "call to 'rand()' is not seed-reproducible")
expect_flag(determinism_unordered.cc 1
    "range-for over unordered container 'dirty'")

# The real tree must be clean.
execute_process(COMMAND ${LINT} ${SOURCE_DIR}/src ${SOURCE_DIR}/tools
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "real tree should lint clean, got exit ${rc}\n${out}${err}")
endif()
message(STATUS "real tree: clean\n${out}")
