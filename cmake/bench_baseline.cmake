# Recorded-baseline performance gate (ctest tier2).
#
# Re-runs an experiment driver with the exact parameters its committed
# baseline artifact was recorded with, then diffs the fresh artifact
# against the baseline with dolos_report. The simulator is
# deterministic, so any drift is a real modeling change: regressions
# beyond the threshold fail the gate, and an intentional change is
# blessed by re-recording the baseline with the same driver flags,
# e.g.:
#
#   bench/intro_overhead --txns 120 --keys 64 --seed 7 \
#       --json tests/baselines/BENCH_intro_overhead.json
#   bench/fig12_speedup_eager --txns 40 --keys 64 --seed 7 \
#       --json tests/baselines/BENCH_fig12_speedup_eager.json
#
# Invoked as:
#   cmake -DBENCH=<driver> -DREPORT=<dolos_report>
#         -DBASELINE=<BENCH_*.json> -DWORKDIR=<dir>
#         [-DTXNS=N] [-DKEYS=N] [-DSEED=N] [-DTHRESHOLD=PCT]
#         -P bench_baseline.cmake
#
# THRESHOLD defaults to the deterministic-simulation gate (2%); the
# selfbench gate measures host wall-clock and needs a far looser one.

foreach(var BENCH REPORT BASELINE WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "bench_baseline: ${var} not set")
    endif()
endforeach()

# Driver parameters default to the original intro_overhead recording;
# each gate overrides what its baseline was recorded with.
if(NOT DEFINED TXNS)
    set(TXNS 120)
endif()
if(NOT DEFINED KEYS)
    set(KEYS 64)
endif()
if(NOT DEFINED SEED)
    set(SEED 7)
endif()
if(NOT DEFINED THRESHOLD)
    set(THRESHOLD 2)
endif()

if(NOT EXISTS "${BASELINE}")
    message(FATAL_ERROR "bench_baseline: baseline ${BASELINE} missing")
endif()

file(MAKE_DIRECTORY "${WORKDIR}")
get_filename_component(artifact "${BASELINE}" NAME)
set(candidate "${WORKDIR}/${artifact}")

# Must match the parameters recorded in the baseline artifact.
execute_process(
    COMMAND "${BENCH}" --txns ${TXNS} --keys ${KEYS} --seed ${SEED}
            --json "${candidate}"
    RESULT_VARIABLE bench_rc
    OUTPUT_VARIABLE bench_out
    ERROR_VARIABLE bench_err)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR
        "bench_baseline: driver failed (rc=${bench_rc})\n"
        "${bench_out}\n${bench_err}")
endif()

execute_process(
    COMMAND "${REPORT}" --check "${candidate}"
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "bench_baseline: invalid artifact (rc=${check_rc})\n"
        "${check_out}\n${check_err}")
endif()

execute_process(
    COMMAND "${REPORT}" "${BASELINE}" "${candidate}"
            --threshold ${THRESHOLD}
    RESULT_VARIABLE diff_rc
    OUTPUT_VARIABLE diff_out
    ERROR_VARIABLE diff_err)

# Per-stage stall-cycle delta table (informational): artifacts that
# carry stage-cycle series get a breakdown of where the drift is, so
# a threshold failure names the stage that moved.
execute_process(
    COMMAND "${REPORT}" --diff "${BASELINE}" "${candidate}"
    RESULT_VARIABLE stage_rc
    OUTPUT_VARIABLE stage_out
    ERROR_VARIABLE stage_err)
if(stage_rc EQUAL 0)
    set(stage_table "\nstage delta vs baseline:\n${stage_out}")
else()
    set(stage_table "")
endif()

if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
        "bench_baseline: regression vs recorded baseline "
        "(rc=${diff_rc})\n${diff_out}\n${diff_err}${stage_table}\n"
        "If the change is intentional, re-record the baseline (see "
        "header of bench_baseline.cmake).")
endif()

message(STATUS "bench_baseline: OK\n${diff_out}${stage_table}")
