# Recorded-baseline performance gate (ctest tier2).
#
# Re-runs the intro_overhead experiment driver with the exact
# parameters its committed baseline artifact was recorded with
# (tests/baselines/BENCH_intro_overhead.json), then diffs the fresh
# artifact against the baseline with dolos_report. The simulator is
# deterministic, so any drift is a real modeling change: regressions
# beyond the threshold fail the gate, and an intentional change is
# blessed by re-recording the baseline:
#
#   bench/intro_overhead --txns 120 --keys 64 --seed 7 \
#       --json tests/baselines/BENCH_intro_overhead.json
#
# Invoked as:
#   cmake -DBENCH=<intro_overhead> -DREPORT=<dolos_report>
#         -DBASELINE=<BENCH_intro_overhead.json> -DWORKDIR=<dir>
#         -P bench_baseline.cmake

foreach(var BENCH REPORT BASELINE WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "bench_baseline: ${var} not set")
    endif()
endforeach()

if(NOT EXISTS "${BASELINE}")
    message(FATAL_ERROR "bench_baseline: baseline ${BASELINE} missing")
endif()

file(MAKE_DIRECTORY "${WORKDIR}")
set(candidate "${WORKDIR}/BENCH_intro_overhead.json")

# Must match the parameters recorded in the baseline artifact.
execute_process(
    COMMAND "${BENCH}" --txns 120 --keys 64 --seed 7
            --json "${candidate}"
    RESULT_VARIABLE bench_rc
    OUTPUT_VARIABLE bench_out
    ERROR_VARIABLE bench_err)
if(NOT bench_rc EQUAL 0)
    message(FATAL_ERROR
        "bench_baseline: driver failed (rc=${bench_rc})\n"
        "${bench_out}\n${bench_err}")
endif()

execute_process(
    COMMAND "${REPORT}" --check "${candidate}"
    RESULT_VARIABLE check_rc
    OUTPUT_VARIABLE check_out
    ERROR_VARIABLE check_err)
if(NOT check_rc EQUAL 0)
    message(FATAL_ERROR
        "bench_baseline: invalid artifact (rc=${check_rc})\n"
        "${check_out}\n${check_err}")
endif()

execute_process(
    COMMAND "${REPORT}" "${BASELINE}" "${candidate}" --threshold 2
    RESULT_VARIABLE diff_rc
    OUTPUT_VARIABLE diff_out
    ERROR_VARIABLE diff_err)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
        "bench_baseline: regression vs recorded baseline "
        "(rc=${diff_rc})\n${diff_out}\n${diff_err}\n"
        "If the change is intentional, re-record the baseline (see "
        "header of bench_baseline.cmake).")
endif()

message(STATUS "bench_baseline: OK\n${diff_out}")
