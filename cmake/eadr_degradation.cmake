# eADR graceful-degradation smoke (ctest tier2).
#
# An under-provisioned holdup energy budget must surface as *loud,
# structured* data loss — quarantined lines with cause provenance and
# the documented exit-4 (unrecoverable media) path — never as silent
# corruption or a crash of the tool itself. This script drives the
# contract end to end through both CLI drivers:
#
#   - dolos_torture replay in eadr mode with a 1-cycle budget: the
#     flush admits one line, quarantines the rest, and the run exits
#     4 (quarantine, no oracle violation on surviving blocks).
#   - dolos_sim with the same starved budget writes a --damage-json
#     report naming the eadr_flush_budget_exhausted cause, validated
#     by dolos_report --check.
#   - Negative CLI: --points microstep on a mode without an
#     interruptible persist surface is a usage error (exit 2) that
#     names the supported mode set; a zero --eadr-budget is rejected,
#     not clamped.
#
# Invoked as:
#   cmake -DSIM=<dolos-sim> -DTORTURE=<dolos_torture>
#         -DREPORT=<dolos_report> -DWORKDIR=<dir>
#         -P eadr_degradation.cmake

foreach(var SIM TORTURE REPORT WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "eadr_degradation: ${var} not set")
    endif()
endforeach()

file(MAKE_DIRECTORY "${WORKDIR}")

function(expect_rc expected)
    execute_process(
        COMMAND ${ARGN}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL ${expected})
        message(FATAL_ERROR
            "eadr_degradation: expected rc=${expected}, got rc=${rc} "
            "for: ${ARGN}\n${out}\n${err}")
    endif()
    set(last_out "${out}" PARENT_SCOPE)
    set(last_err "${err}" PARENT_SCOPE)
endfunction()

# A fully provisioned budget: clean exit, nothing quarantined. No
# clwb/fence ops needed — under eADR the store itself is persistent.
expect_rc(0 "${TORTURE}" --mode eadr --replay w:1:7,w:2:8,w:3:9,c)

# Starved budget (1 cycle admits exactly one line): the tail is
# quarantined loudly and the run takes the unrecoverable-media exit.
expect_rc(4 "${TORTURE}" --mode eadr --eadr-budget 1
            --replay w:1:7,w:2:8,w:3:9,w:4:4,c)
if(NOT last_out MATCHES "quarantined=[1-9]")
    message(FATAL_ERROR
        "eadr_degradation: starved flush reported no quarantined "
        "lines:\n${last_out}")
endif()

# Same contract through dolos_sim, with the structured damage report.
set(damage "${WORKDIR}/damage.json")
expect_rc(4 "${SIM}" --workload hashmap --mode eadr --txns 20
            --keys 48 --crash-at 10 --eadr-budget 1
            --damage-json "${damage}")
if(NOT EXISTS "${damage}")
    message(FATAL_ERROR "eadr_degradation: damage report not written")
endif()
expect_rc(0 "${REPORT}" --check "${damage}")
file(READ "${damage}" damage_text)
if(NOT damage_text MATCHES "eadr_flush_budget_exhausted")
    message(FATAL_ERROR
        "eadr_degradation: damage report lacks the flush cause:\n"
        "${damage_text}")
endif()
if(NOT damage_text MATCHES "\"unrecoverableMedia\":true")
    message(FATAL_ERROR
        "eadr_degradation: damage report lacks the quarantine flag:\n"
        "${damage_text}")
endif()

# Negative CLI: microstep sweeps name the supported mode set instead
# of silently running a mode with no interruptible persist surface.
expect_rc(2 "${TORTURE}" --sweep --points microstep --mode baseline
            --budget 2 --txns 2)
if(NOT last_err MATCHES "dolos-full\\|dolos-partial\\|dolos-post")
    message(FATAL_ERROR
        "eadr_degradation: microstep rejection does not name the "
        "supported modes:\n${last_err}")
endif()
if(NOT last_err MATCHES "eadr")
    message(FATAL_ERROR
        "eadr_degradation: microstep rejection does not mention "
        "eadr:\n${last_err}")
endif()

# Reject-not-clamp: a zero energy budget is a usage error everywhere.
expect_rc(2 "${TORTURE}" --mode eadr --eadr-budget 0 --replay w:1:7,c)
expect_rc(2 "${SIM}" --workload hashmap --mode eadr --txns 5
            --eadr-budget 0)

message(STATUS "eadr_degradation: OK")
