# ThreadSanitizer lane (ctest tier2).
#
# The dynamic half of the thread-shared lint audit: configures a
# separate build tree with -DDOLOS_TSAN=ON and runs the parallel
# (--jobs 4) sweep and campaign paths under
# TSAN_OPTIONS=halt_on_error=1, so any data race — including one
# hiding behind a wrong DOLOS_THREAD_LOCAL_OK claim — aborts the
# binary and fails the expected-exit-code checks below.
#
# Skips gracefully (the ctest SKIP_REGULAR_EXPRESSION matches the
# "ThreadSanitizer not available" message) when the toolchain cannot
# link -fsanitize=thread.
#
# Invoked as:
#   cmake -DSOURCE_DIR=<repo root> -DWORKDIR=<dir> -P tsan_lane.cmake

foreach(var SOURCE_DIR WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "tsan_lane: ${var} not set")
    endif()
endforeach()

# Probe: can the host compiler build and link a threaded TSan binary?
set(probe_dir "${WORKDIR}/tsan-probe")
file(MAKE_DIRECTORY "${probe_dir}")
file(WRITE "${probe_dir}/probe.cc" "int main() { return 0; }\n")
find_program(CXX NAMES c++ g++ clang++)
if(NOT CXX)
    message(STATUS "tsan_lane: no C++ compiler found — "
                   "ThreadSanitizer not available")
    return()
endif()
execute_process(
    COMMAND "${CXX}" -fsanitize=thread "${probe_dir}/probe.cc"
            -o "${probe_dir}/probe"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(STATUS "tsan_lane: toolchain cannot link "
                   "-fsanitize=thread — ThreadSanitizer not available")
    return()
endif()
execute_process(
    COMMAND "${probe_dir}/probe"
    RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
    # e.g. TSan runtime rejects the kernel's ASLR settings.
    message(STATUS "tsan_lane: TSan-instrumented probe cannot run "
                   "here — ThreadSanitizer not available")
    return()
endif()

set(build "${WORKDIR}/tsan-build")
file(MAKE_DIRECTORY "${build}")

execute_process(
    COMMAND "${CMAKE_COMMAND}" -S "${SOURCE_DIR}" -B "${build}"
            -DDOLOS_TSAN=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
            -DDOLOS_WERROR=ON
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "tsan_lane: configure failed (rc=${rc})\n${out}\n${err}")
endif()

execute_process(
    COMMAND "${CMAKE_COMMAND}" --build "${build}" -j
            --target dolos_torture_cli dolos_fuzz_cli
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "tsan_lane: build failed (rc=${rc})\n${out}\n${err}")
endif()

set(torture "${build}/tools/dolos_torture")
set(fuzz "${build}/tools/dolos_fuzz")

function(expect_rc expected)
    execute_process(
        COMMAND "${CMAKE_COMMAND}" -E env TSAN_OPTIONS=halt_on_error=1
                ${ARGN}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL ${expected})
        message(FATAL_ERROR
            "tsan_lane: expected rc=${expected}, got rc=${rc} "
            "for: ${ARGN}\n${out}\n${err}")
    endif()
endfunction()

# Parallel microstep sweep slices: 4 workers each running
# self-contained Systems with thread-local crash-point registries —
# the exact configuration the thread-shared audit certifies.
expect_rc(0 "${torture}" --sweep --points microstep --budget 12
            --txns 2 --mode dolos-partial --jobs 4)
expect_rc(0 "${torture}" --sweep --points microstep --budget 12
            --txns 2 --mode eadr --jobs 4)

# Parallel every-op sweep with a mid-recovery crash armed: the
# compound-failure path under contention.
expect_rc(0 "${torture}" --sweep --points every-op --budget 8
            --txns 2 --recovery-crash 2 --jobs 4)

# Parallel randomized torture campaign: episodes race through the
# debug-flag set, campaign monitor, and the per-thread singletons.
expect_rc(0 "${torture}" --campaign 8 --seed 11 --ops 60 --jobs 4)

# Parallel fuzz campaign slice: all modes x workloads with faults.
expect_rc(0 "${fuzz}" --campaign smoke --jobs 4 --heartbeat 3)

message(STATUS "tsan_lane: OK (zero data races)")
