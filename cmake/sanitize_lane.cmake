# ASan+UBSan lane (ctest tier2).
#
# Configures a separate build tree with -DDOLOS_SANITIZE=ON, builds
# the two compound-failure drivers, and runs them through the paths
# most likely to hide memory bugs: an arbitrary-cycle crash sweep with
# a mid-recovery crash armed, and a short randomized torture campaign.
# Any ASan/UBSan report aborts the binary (-fno-sanitize-recover),
# which fails the expected-exit-code checks below.
#
# Invoked as:
#   cmake -DSOURCE_DIR=<repo root> -DWORKDIR=<dir>
#         -P sanitize_lane.cmake

foreach(var SOURCE_DIR WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "sanitize_lane: ${var} not set")
    endif()
endforeach()

set(build "${WORKDIR}/asan-build")
file(MAKE_DIRECTORY "${build}")

execute_process(
    COMMAND "${CMAKE_COMMAND}" -S "${SOURCE_DIR}" -B "${build}"
            -DDOLOS_SANITIZE=ON -DCMAKE_BUILD_TYPE=RelWithDebInfo
            -DDOLOS_WERROR=ON
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "sanitize_lane: configure failed (rc=${rc})\n${out}\n${err}")
endif()

# Static checks gate the lane: build and run dolos_lint over the real
# tree before spending time on the sanitizer build proper.
execute_process(
    COMMAND "${CMAKE_COMMAND}" --build "${build}" -j
            --target dolos_lint
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "sanitize_lane: lint build failed (rc=${rc})\n${out}\n${err}")
endif()
execute_process(
    COMMAND "${build}/tools/dolos_lint" "${SOURCE_DIR}/src"
            "${SOURCE_DIR}/tools"
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "sanitize_lane: dolos_lint found violations "
        "(rc=${rc})\n${out}\n${err}")
endif()

execute_process(
    COMMAND "${CMAKE_COMMAND}" --build "${build}" -j
            --target dolos_torture_cli dolos_sim_cli
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR
        "sanitize_lane: build failed (rc=${rc})\n${out}\n${err}")
endif()

set(torture "${build}/tools/dolos_torture")
set(sim "${build}/tools/dolos-sim")

function(expect_rc expected)
    execute_process(
        COMMAND ${ARGN}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL ${expected})
        message(FATAL_ERROR
            "sanitize_lane: expected rc=${expected}, got rc=${rc} "
            "for: ${ARGN}\n${out}\n${err}")
    endif()
endfunction()

# Crash sweep with a mid-recovery crash armed at every point.
expect_rc(0 "${torture}" --sweep --recovery-crash 2 --budget 2
            --txns 2)

# Randomized compound-failure campaign (crashes + media faults).
expect_rc(0 "${torture}" --campaign 4 --seed 11 --ops 60)

# Metadata-fault crash sweep: stuck-at faults on counter / tree / MAC
# frames after every sampled power-off, exercising the repair and
# cascade paths under the sanitizers.
expect_rc(0 "${torture}" --sweep --points every-op --meta-faults
            --budget 2 --txns 2)

# Microstep crash sweep: power failures inside the optimized persist
# path (mid BMT climb, at drain elisions, after prefetches) — the
# exception-unwound drain plus re-drained recovery is exactly the
# kind of path sanitizers catch lifetime bugs in.
expect_rc(0 "${torture}" --sweep --points microstep --budget 2
            --txns 2 --mode dolos-partial)

# eADR flush-microstep sweep: power dies inside the power-fail
# holdup flush itself — the exception-unwound flush loop, the
# quarantine writer, and the anchored probe/replay machinery all
# juggle captured cache lines whose lifetimes the sanitizers check.
expect_rc(0 "${torture}" --sweep --points microstep --budget 2
            --txns 2 --mode eadr)

# Starved holdup budget through the replay driver: the quarantined
# tail and the unrecoverable-media exit path under ASan.
expect_rc(4 "${torture}" --mode eadr --eadr-budget 1
            --replay w:1:7,w:2:8,w:3:9,c)

# Media quarantine path through the full CLI, including the damage
# report writer.
expect_rc(4 "${sim}" --workload hashmap --mode dolos-partial
            --txns 30 --keys 64 --media-fault stuck
            --damage-json "${WORKDIR}/damage.json")

message(STATUS "sanitize_lane: OK")
