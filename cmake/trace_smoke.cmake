# End-to-end observability smoke test (ctest tier2).
#
# Runs one short simulation with --trace and --stats-json, then
# validates both artifacts with dolos_report --check and diffs the
# stats artifact against itself (which must report zero regressions).
#
# Invoked as:
#   cmake -DSIM=<dolos-sim> -DREPORT=<dolos_report> -DWORKDIR=<dir>
#         -P trace_smoke.cmake

foreach(var SIM REPORT WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "trace_smoke: ${var} not set")
    endif()
endforeach()

file(MAKE_DIRECTORY "${WORKDIR}")
set(trace_file "${WORKDIR}/trace.json")
set(stats_file "${WORKDIR}/stats.json")

execute_process(
    COMMAND "${SIM}" --workload hashmap --mode full_wpq
            --txns 50 --keys 64
            --trace "${trace_file}" --stats-json "${stats_file}"
    RESULT_VARIABLE sim_rc
    OUTPUT_VARIABLE sim_out
    ERROR_VARIABLE sim_err)
if(NOT sim_rc EQUAL 0)
    message(FATAL_ERROR
        "trace_smoke: simulation failed (rc=${sim_rc})\n"
        "${sim_out}\n${sim_err}")
endif()

foreach(artifact "${trace_file}" "${stats_file}")
    execute_process(
        COMMAND "${REPORT}" --check "${artifact}"
        RESULT_VARIABLE check_rc
        OUTPUT_VARIABLE check_out
        ERROR_VARIABLE check_err)
    if(NOT check_rc EQUAL 0)
        message(FATAL_ERROR
            "trace_smoke: invalid JSON artifact ${artifact} "
            "(rc=${check_rc})\n${check_out}\n${check_err}")
    endif()
endforeach()

# A self-diff must be regression-free: exercises the compare path.
execute_process(
    COMMAND "${REPORT}" "${stats_file}" "${stats_file}"
    RESULT_VARIABLE diff_rc
    OUTPUT_VARIABLE diff_out
    ERROR_VARIABLE diff_err)
if(NOT diff_rc EQUAL 0)
    message(FATAL_ERROR
        "trace_smoke: self-diff reported regressions (rc=${diff_rc})\n"
        "${diff_out}\n${diff_err}")
endif()

message(STATUS "trace_smoke: OK")
