# Exit-code contract smoke test (ctest tier2).
#
# The documented dolos_sim / dolos_torture exit codes (see
# src/sim/exit_codes.hh and docs/verification.md):
#
#   0  clean, verified run
#   1  verification / oracle failure
#   2  usage or configuration error
#   3  integrity attack detected
#   4  unrecoverable media fault (quarantine)
#
# This script drives each path end to end and also validates the
# --damage-json artifact with dolos_report --check.
#
# Invoked as:
#   cmake -DSIM=<dolos-sim> -DTORTURE=<dolos_torture>
#         -DREPORT=<dolos_report> -DWORKDIR=<dir>
#         -P exit_codes_smoke.cmake

foreach(var SIM TORTURE REPORT WORKDIR)
    if(NOT DEFINED ${var})
        message(FATAL_ERROR "exit_codes_smoke: ${var} not set")
    endif()
endforeach()

file(MAKE_DIRECTORY "${WORKDIR}")

function(expect_rc expected)
    execute_process(
        COMMAND ${ARGN}
        RESULT_VARIABLE rc
        OUTPUT_VARIABLE out
        ERROR_VARIABLE err)
    if(NOT rc EQUAL ${expected})
        message(FATAL_ERROR
            "exit_codes_smoke: expected rc=${expected}, got rc=${rc} "
            "for: ${ARGN}\n${out}\n${err}")
    endif()
endfunction()

# 0: clean verified run.
expect_rc(0 "${SIM}" --workload hashmap --mode dolos-partial
            --txns 40 --keys 64)

# 2: usage error (unknown mode) — rejected, not defaulted.
expect_rc(2 "${SIM}" --mode not-a-mode)

# 2: invalid configuration (degenerate WPQ) — rejected, not clamped.
expect_rc(2 "${SIM}" --wpq 1 --txns 10)

# 3: injected integrity attack raises the alarm.
expect_rc(3 "${SIM}" --workload hashmap --mode dolos-partial
            --txns 40 --keys 64 --inject-fault data-flip)

# 4: unhealable media fault degrades gracefully (quarantine, no
#    abort) and emits a structured damage report.
set(damage "${WORKDIR}/damage.json")
expect_rc(4 "${SIM}" --workload hashmap --mode dolos-partial
            --txns 40 --keys 64 --media-fault stuck
            --damage-json "${damage}")
if(NOT EXISTS "${damage}")
    message(FATAL_ERROR "exit_codes_smoke: damage report not written")
endif()
expect_rc(0 "${REPORT}" --check "${damage}")
file(READ "${damage}" damage_text)
if(NOT damage_text MATCHES "\"unrecoverableMedia\":true")
    message(FATAL_ERROR
        "exit_codes_smoke: damage report lacks the quarantine flag:\n"
        "${damage_text}")
endif()

# 0: a transient fault heals through retry — clean exit, no report.
expect_rc(0 "${SIM}" --workload hashmap --mode dolos-partial
            --txns 40 --keys 64 --media-fault transient)

# Torture driver speaks the same contract.
expect_rc(0 "${TORTURE}" --replay w:1:7,f:1,s,c)
expect_rc(2 "${TORTURE}" --mode not-a-mode)
expect_rc(2 "${TORTURE}" --replay zz:1)
expect_rc(4 "${TORTURE}" --replay w:3:7,x:3:9,f:3,s,c)
expect_rc(1 "${TORTURE}" --mode dolos-partial --plant-bug drop-clwb:0
            --replay w:5:9,f:5,s,c)

message(STATUS "exit_codes_smoke: OK")
