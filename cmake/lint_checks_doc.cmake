# ctest `lint_checks_doc`: the check registry compiled into
# dolos_lint (--list-checks) and the check table documented in
# docs/static_analysis.md must agree exactly, both directions — a new
# check without docs, or a documented check the binary lost, fails.
#
# Inputs: -DLINT=<dolos_lint binary> -DSOURCE_DIR=<repo root>

cmake_policy(SET CMP0057 NEW) # IN_LIST (script mode sets no policies)

if(NOT LINT OR NOT SOURCE_DIR)
    message(FATAL_ERROR "need -DLINT=... -DSOURCE_DIR=...")
endif()

execute_process(COMMAND ${LINT} --list-checks
    RESULT_VARIABLE rc OUTPUT_VARIABLE out ERROR_VARIABLE err)
if(NOT rc EQUAL 0)
    message(FATAL_ERROR "--list-checks failed (${rc})\n${out}${err}")
endif()

set(bin_checks "")
string(REPLACE "\n" ";" lines "${out}")
foreach(line IN LISTS lines)
    if(line MATCHES "^([a-z][a-z-]*) ")
        list(APPEND bin_checks ${CMAKE_MATCH_1})
    endif()
endforeach()

set(doc_checks "")
file(STRINGS ${SOURCE_DIR}/docs/static_analysis.md doc_lines)
foreach(line IN LISTS doc_lines)
    # Table rows look like: | `check-name` | what it enforces |
    if(line MATCHES "^\\| `([a-z][a-z-]*)` \\|")
        list(APPEND doc_checks ${CMAKE_MATCH_1})
    endif()
endforeach()

list(LENGTH bin_checks n_bin)
list(LENGTH doc_checks n_doc)
if(n_bin EQUAL 0 OR n_doc EQUAL 0)
    message(FATAL_ERROR
        "parsed ${n_bin} checks from --list-checks and ${n_doc} from "
        "docs/static_analysis.md; at least one parse came up empty")
endif()

foreach(c IN LISTS bin_checks)
    if(NOT c IN_LIST doc_checks)
        message(FATAL_ERROR
            "check '${c}' is in dolos_lint --list-checks but has no "
            "row in docs/static_analysis.md's check table")
    endif()
endforeach()
foreach(c IN LISTS doc_checks)
    if(NOT c IN_LIST bin_checks)
        message(FATAL_ERROR
            "check '${c}' is documented in docs/static_analysis.md "
            "but missing from dolos_lint --list-checks")
    endif()
endforeach()

message(STATUS
    "check registry and docs agree on ${n_bin} checks: ${bin_checks}")
